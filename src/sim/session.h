// One video-communication stream as a steppable value object.
//
// StreamSession owns everything one stream of the paper's Fig. 1 pipeline
// needs — refresh policy, encoder, rate controller, packetizer, channel
// (with optional owned loss model), decoder, feedback loop, and metrics —
// and advances exactly one frame per step(). The per-frame work is an
// ordered list of pluggable FrameStages (encode / packetize / transmit /
// depacketize / decode / measure), so experiments can insert, replace, or
// remove stages (taps, noise injection, alternative channels) without
// touching any loop code. run_pipeline() (sim/pipeline.h) is a thin shim
// over one session with the default stages and stays byte-identical to the
// historical monolithic loop.
//
// Sessions are self-contained: no shared mutable state between instances
// (the codec's only process-wide state is the read-only kernel dispatch
// table and the obs registry, which reads but never perturbs), so many
// sessions can run concurrently — see sim/session_manager.h.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include <fstream>
#include <optional>

#include "net/feedback.h"
#include "sim/pipeline.h"

namespace pbpair::obs {
class Counter;
class FlightRecorder;
}

namespace pbpair::sim {

class StreamSession;

/// Per-frame state threaded through the stage list. Each default stage
/// fills the fields the next one consumes; inserted stages may read or
/// rewrite anything (e.g. a corruption stage edits `delivered`).
struct FrameContext {
  int index = 0;
  video::YuvFrame original;              // from the frame source
  codec::EncodedFrame encoded;           // after "encode"
  std::vector<net::Packet> packets;      // after "packetize" (+FEC repair)
  std::vector<net::Packet> delivered;    // after "transmit"
  /// Media packet count before "fec_encode" appended repair packets;
  /// -1 when the session has no FEC stages. "measure" uses it so frame
  /// loss means "a MEDIA packet is still missing after recovery".
  int media_packets_sent = -1;
  codec::ReceivedFrame received;         // after "depacketize"
  const video::YuvFrame* output = nullptr;  // after "decode"
  FrameTrace trace;                      // filled by "measure"
};

/// One pipeline stage: a name (for insert/replace addressing) and the work.
struct FrameStage {
  std::string name;
  std::function<void(FrameContext&, StreamSession&)> run;
};

class StreamSession {
 public:
  /// Builds a session with the default stage list. `loss` is not owned and
  /// may be null (lossless channel); it must outlive the session.
  /// `label`, when non-empty, namespaces this session's obs counters as
  /// "session.<label>.*" (obs::session_metric).
  StreamSession(FrameSource source, const SchemeSpec& scheme,
                net::LossModel* loss, const PipelineConfig& config,
                std::string label = {});

  /// As above, but the session owns the loss model (per-session seeded
  /// models in multi-session runs).
  StreamSession(FrameSource source, const SchemeSpec& scheme,
                std::unique_ptr<net::LossModel> loss,
                const PipelineConfig& config, std::string label = {});

  StreamSession(StreamSession&&) = default;
  StreamSession& operator=(StreamSession&&) = default;

  ~StreamSession();

  /// Advances one frame through the stage list; returns its trace.
  /// Must not be called once done().
  const FrameTrace& step();

  /// Steps until done().
  void run_to_end();

  bool done() const { return next_frame_ >= config_.frames; }
  int frames_done() const { return next_frame_; }
  int total_frames() const { return config_.frames; }

  /// Finalized result (averages, energies). Valid once done(); the frame
  /// trace file, if any, is flushed and closed on first call.
  PipelineResult take_result();

  // --- stage composition -------------------------------------------------
  // Default list: encode, packetize, transmit, depacketize, decode,
  // measure. Addressing is by name; unknown names PB_CHECK-fail.

  const std::vector<FrameStage>& stages() const { return stages_; }
  void insert_stage_before(const std::string& name, FrameStage stage);
  void insert_stage_after(const std::string& name, FrameStage stage);
  void replace_stage(const std::string& name, FrameStage stage);
  void remove_stage(const std::string& name);

  // --- component access (stages and experiment hooks use these) ----------
  codec::Encoder& encoder() { return *encoder_; }
  codec::Decoder& decoder() { return *decoder_; }
  codec::RefreshPolicy& policy() { return *policy_; }
  net::Packetizer& packetizer() { return *packetizer_; }
  net::Channel& channel() { return *channel_; }
  /// Non-null only when config().faults is set and enabled.
  net::FaultInjector* fault_injector() { return fault_injector_.get(); }
  /// Non-null only when config().fec is set and enabled. The encoder's
  /// set_m() is the joint adaptation loop's FEC-rate actuator.
  net::FecEncoder* fec_encoder() { return fec_encoder_.get(); }
  net::FecDecoder* fec_decoder() { return fec_decoder_.get(); }
  /// Running CRC verification totals (all zero unless config().wire is
  /// set with crc on — the "verify_integrity" stage is the only writer).
  const net::WireStats& wire_stats() const { return wire_stats_; }
  const PipelineConfig& config() const { return config_; }
  const SchemeSpec& scheme() const { return scheme_; }
  const std::string& label() const { return label_; }

 private:
  void init();
  std::size_t stage_index(const std::string& name) const;
  void write_frame_trace_header();
  void deliver_due_feedback(int frame);
  void observe_delivery(const FrameContext& ctx);
  void accumulate(const FrameTrace& trace);
  void update_telemetry(const FrameTrace& trace);

  SchemeSpec scheme_;
  PipelineConfig config_;
  FrameSource source_;
  std::string label_;

  // Backs every payload BufferRef this session creates — packetizer
  // slices, FEC repair symbols, recovered-packet slabs. Declared FIRST so
  // it is destroyed LAST: the components below may still hold refs into
  // it (the arena's destructor checks live_allocations() == 0).
  std::unique_ptr<net::BufferArena> arena_;

  std::unique_ptr<codec::RefreshPolicy> policy_;
  std::unique_ptr<codec::Encoder> encoder_;
  std::unique_ptr<codec::Decoder> decoder_;
  std::unique_ptr<net::Packetizer> packetizer_;
  std::unique_ptr<net::LossModel> owned_loss_;
  std::unique_ptr<net::NoLoss> no_loss_;
  std::unique_ptr<net::Channel> channel_;
  std::unique_ptr<net::FaultInjector> fault_injector_;
  std::unique_ptr<net::FecEncoder> fec_encoder_;
  std::unique_ptr<net::FecDecoder> fec_decoder_;
  std::optional<codec::RateController> rate_;

  // Receiver-side feedback loop (active only when config_.on_feedback).
  std::unique_ptr<net::PlrEstimator> plr_estimator_;
  std::unique_ptr<net::ReceiverReportBuilder> report_builder_;
  std::unique_ptr<net::DelayedFeedback<net::ReceiverReport>> feedback_queue_;
  std::uint16_t highest_sequence_ = 0;

  // CRC verification totals ("verify_integrity" stage); the interval
  // count resets every receiver report and feeds its corruption split.
  net::WireStats wire_stats_;
  std::uint64_t crc_corrupted_interval_ = 0;

  std::vector<FrameStage> stages_;
  std::unique_ptr<std::ofstream> frame_trace_out_;

  // Live telemetry (config_.health / per-session obs counters). The
  // energy trackers attribute each frame's analytic joules incrementally
  // — pure reads of encoder ops and channel stats, never a perturbation.
  std::shared_ptr<obs::SessionHealth> health_;
  double energy_reported_j_ = 0.0;
  std::uint64_t energy_reported_uj_ = 0;
  int mbs_per_frame_ = 0;

  // Always-on post-mortem ring (obs/flight_recorder.h), created for
  // labeled sessions only: an unlabeled session has no stable identity to
  // dump under (and parallel unlabeled sessions would share one ring).
  // Registry-owned, so the pointer stays valid across session moves and
  // outlives the session for post-mortem reads.
  obs::FlightRecorder* flight_ = nullptr;

  // Cached handles for the per-frame "session.<label>.*" counters: one
  // name build + map lookup per session instead of per frame; the add()s
  // land on the stepping thread's shard. (Registry-owned, move-safe.)
  obs::Counter* c_frames_ = nullptr;
  obs::Counter* c_bytes_ = nullptr;
  obs::Counter* c_lost_frames_ = nullptr;
  obs::Counter* c_packets_sent_ = nullptr;
  obs::Counter* c_packets_delivered_ = nullptr;
  obs::Counter* c_intra_mbs_ = nullptr;
  obs::Counter* c_mbs_ = nullptr;
  obs::Counter* c_crc_corrupted_ = nullptr;
  obs::Counter* c_energy_uj_ = nullptr;

  int next_frame_ = 0;
  double psnr_sum_ = 0.0;
  PipelineResult result_;
  bool finalized_ = false;
};

}  // namespace pbpair::sim
