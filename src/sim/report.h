// Plain-text table / CSV rendering for benchmark output.
//
// Every figure/table bench prints an aligned text table (the "same rows the
// paper reports") and can optionally dump CSV for external plotting.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

namespace pbpair::sim {

class Table {
 public:
  explicit Table(std::vector<std::string> header)
      : header_(std::move(header)) {}

  void add_row(std::vector<std::string> row) { rows_.push_back(std::move(row)); }

  /// Renders with aligned columns to stdout.
  void print(std::FILE* out = stdout) const;

  /// Renders as CSV.
  void print_csv(std::FILE* out) const;

  const std::vector<std::string>& header() const { return header_; }
  const std::vector<std::vector<std::string>>& rows() const { return rows_; }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// printf-style helper returning std::string.
std::string format(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

}  // namespace pbpair::sim
