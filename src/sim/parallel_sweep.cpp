#include "sim/parallel_sweep.h"

#include <string>

#include "common/thread_pool.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace pbpair::sim {

int sweep_thread_count() { return common::default_thread_count(); }

std::vector<PipelineResult> run_parallel_sweep(
    const std::vector<SweepTask>& tasks, const SweepOptions& options) {
  std::vector<PipelineResult> results(tasks.size());
  const bool tracing = obs::enabled();
  // All tasks are enqueued up front, so queue wait per task is measured
  // from this single submission instant to the task's first instruction.
  const std::int64_t submit_ns = tracing ? obs::trace_now_ns() : 0;
  common::parallel_for(
      tasks.size(),
      options.threads <= 0 ? sweep_thread_count() : options.threads,
      [&tasks, &results, tracing, submit_ns](std::size_t i) {
        if (tracing) {
          thread_local bool named = false;
          if (!named) {
            named = true;
            obs::set_thread_name("sweep-worker-" +
                                 std::to_string(obs::current_thread_id()));
          }
          static obs::Counter* c_tasks = &obs::counter("sweep.tasks");
          static obs::Histogram* h_wait =
              &obs::histogram("sweep.queue_wait_ns");
          c_tasks->add(1);
          h_wait->observe(obs::trace_now_ns() - submit_ns);
        }
        obs::ScopedSpan span("sweep.task", static_cast<std::int64_t>(i),
                             "task");
        const SweepTask& task = tasks[i];
        std::unique_ptr<net::LossModel> loss;
        if (task.make_loss) loss = task.make_loss();
        results[i] =
            run_pipeline(task.source, task.scheme, loss.get(), task.config);
      });
  return results;
}

}  // namespace pbpair::sim
