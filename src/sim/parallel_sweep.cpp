#include "sim/parallel_sweep.h"

#include "common/thread_pool.h"

namespace pbpair::sim {

int sweep_thread_count() { return common::default_thread_count(); }

std::vector<PipelineResult> run_parallel_sweep(
    const std::vector<SweepTask>& tasks, const SweepOptions& options) {
  std::vector<PipelineResult> results(tasks.size());
  common::parallel_for(
      tasks.size(),
      options.threads <= 0 ? sweep_thread_count() : options.threads,
      [&tasks, &results](std::size_t i) {
        const SweepTask& task = tasks[i];
        std::unique_ptr<net::LossModel> loss;
        if (task.make_loss) loss = task.make_loss();
        results[i] =
            run_pipeline(task.source, task.scheme, loss.get(), task.config);
      });
  return results;
}

}  // namespace pbpair::sim
