// Parallel fan-out of independent pipeline runs.
//
// Every figure/table benchmark is a grid of (scheme, PLR, seed) points,
// and each point is a completely self-contained run_pipeline() call — the
// sweeps are embarrassingly parallel. A SweepTask owns everything one run
// needs; crucially, the loss model is created INSIDE the task from a
// deterministic factory (per-task seed), so results are byte-identical at
// any thread count. tests/test_parallel_sweep.cpp asserts this at 1, 2,
// and 8 threads.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "net/loss_model.h"
#include "sim/pipeline.h"

namespace pbpair::sim {

struct SweepTask {
  SchemeSpec scheme;
  PipelineConfig config;
  FrameSource source;
  /// Creates the run's own loss model (seeded deterministically by the
  /// caller). Null factory — or a factory returning null — runs the
  /// lossless channel.
  std::function<std::unique_ptr<net::LossModel>()> make_loss;
};

struct SweepOptions {
  /// Worker threads; <= 0 selects sweep_thread_count().
  int threads = 0;
};

/// PBPAIR_THREADS environment override, else hardware concurrency.
int sweep_thread_count();

/// Runs all tasks across a thread pool; results[i] belongs to tasks[i].
std::vector<PipelineResult> run_parallel_sweep(
    const std::vector<SweepTask>& tasks, const SweepOptions& options = {});

}  // namespace pbpair::sim
