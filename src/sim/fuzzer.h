// Seeded fuzz harness enforcing the decoder robustness contract.
//
// `run_fuzz` drives the library's untrusted-input surfaces with hostile
// bytes: the bit reader, the decoder (mutations of a valid bitstream plus
// pure garbage), the RTP parse/depacketize path, the FEC repair-packet
// decoder (forged window geometry, duplicated/truncated repair packets,
// stale window ids), the CRC wire framing (hostile trailers, truncated
// frames, refcount abuse via duplicated packets through the fault
// injector), the Prometheus text parser, and the JSON parser. A
// pass is simply surviving: any PB_CHECK
// abort, sanitizer report, or violated invariant (checked with PB_CHECK
// inside the targets) kills the process and fails the run.
//
// Everything derives from one seed — iteration i of target t uses an
// independent SplitMix64-derived stream — so a failure reported by CI as
// "seed S, target T, iteration I" replays exactly with
// `pbpair fuzz --seed S --target T`. The valid-bitstream corpus is
// encoded once at startup from the synthetic paper clips, so mutation
// inputs are deterministic too.
#pragma once

#include <cstdint>
#include <map>
#include <string>

namespace pbpair::sim {

struct FuzzOptions {
  std::uint64_t seed = 2005;
  /// Iterations per target (each target runs this many cases).
  int iterations = 2000;
  /// "all" or one of: bitreader, decoder, depacketize, packet, fec,
  /// wire, prometheus, json.
  std::string target = "all";
  /// When non-empty, the current case is written to
  /// `<crash_dir>/case.txt` (target, seed, iteration) before execution,
  /// so a crash leaves a replayable breadcrumb behind for CI to upload.
  std::string crash_dir;
};

struct FuzzReport {
  std::uint64_t total_iterations = 0;
  std::map<std::string, std::uint64_t> iterations_per_target;
  /// Damage observed while fuzzing (diagnostics, not pass/fail):
  std::uint64_t decoder_concealed_mbs = 0;
  std::uint64_t parse_rejects = 0;  // inputs the parsers refused
};

/// Runs the configured fuzz campaign; returns per-target counts. False
/// return = unknown target name (the only non-crash failure mode).
bool run_fuzz(const FuzzOptions& options, FuzzReport* report);

}  // namespace pbpair::sim
