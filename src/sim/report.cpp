#include "sim/report.h"

#include <cstdarg>

namespace pbpair::sim {

void Table::print(std::FILE* out) const {
  // Column widths from header + rows.
  std::vector<std::size_t> widths(header_.size(), 0);
  auto grow = [&widths](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      if (row[c].size() > widths[c]) widths[c] = row[c].size();
    }
  };
  grow(header_);
  for (const auto& row : rows_) grow(row);

  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string();
      std::fprintf(out, "%s%-*s", c == 0 ? "" : "  ",
                   static_cast<int>(widths[c]), cell.c_str());
    }
    std::fprintf(out, "\n");
  };

  print_row(header_);
  std::size_t total = 0;
  for (std::size_t w : widths) total += w + 2;
  for (std::size_t i = 0; i + 2 < total; ++i) std::fputc('-', out);
  std::fputc('\n', out);
  for (const auto& row : rows_) print_row(row);
}

void Table::print_csv(std::FILE* out) const {
  auto print_row = [out](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      std::fprintf(out, "%s%s", c == 0 ? "" : ",", row[c].c_str());
    }
    std::fprintf(out, "\n");
  };
  print_row(header_);
  for (const auto& row : rows_) print_row(row);
}

std::string format(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  char buffer[256];
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(buffer, sizeof(buffer), fmt, args_copy);
  va_end(args_copy);
  std::string out;
  if (needed >= 0 && static_cast<std::size_t>(needed) < sizeof(buffer)) {
    out.assign(buffer, static_cast<std::size_t>(needed));
  } else if (needed >= 0) {
    out.resize(static_cast<std::size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args);
  }
  va_end(args);
  return out;
}

}  // namespace pbpair::sim
