#include "energy/energy_model.h"

namespace pbpair::energy {
namespace {

// Cycle estimates for a fixed-point H.263 encoder on a 400 MHz XScale,
// times ~1.05 nJ/cycle active energy (PXA25x-class core + SDRAM traffic).
// The absolute numbers are a model; what the experiments rely on is the
// *ratio* structure — ME's inner SAD loop dominating everything else —
// which matches both the paper's premise ("motion estimation ... is the
// most power consuming operation") and published XScale codec profiles.
constexpr double kNjPerCycle = 1.05;

DeviceProfile make_profile(const char* name, double memory_scale) {
  DeviceProfile p;
  p.name = name;
  p.sad_pixel_nj = 4.0 * kNjPerCycle * memory_scale;   // ld,ld,sub,abs-acc
  p.sad_halfpel_nj = 10.0 * kNjPerCycle * memory_scale; // + bilinear interp
  p.me_setup_nj = 350.0 * kNjPerCycle;
  p.dct_block_nj = 980.0 * kNjPerCycle;                // fast 8x8 int DCT
  p.idct_block_nj = 900.0 * kNjPerCycle;
  p.quant_coeff_nj = 4.5 * kNjPerCycle;
  p.dequant_coeff_nj = 3.5 * kNjPerCycle;
  p.mc_pixel_nj = 3.0 * kNjPerCycle * memory_scale;
  p.mc_halfpel_nj = 8.0 * kNjPerCycle * memory_scale;
  p.vlc_bit_nj = 6.0 * kNjPerCycle;
  p.mb_overhead_nj = 220.0 * kNjPerCycle;
  p.frame_overhead_nj = 30000.0 * kNjPerCycle;
  // 802.11b transmit at ~1.3 uJ/byte effective (card + protocol overhead).
  p.tx_byte_nj = 1300.0;
  return p;
}

}  // namespace

EnergyBreakdown encode_energy(const OpCounters& ops,
                              const DeviceProfile& profile) {
  EnergyBreakdown e;
  constexpr double kJ = 1e-9;  // nanojoule -> joule
  e.me_j = (static_cast<double>(ops.sad_pixel_ops) * profile.sad_pixel_nj +
            static_cast<double>(ops.sad_halfpel_ops) * profile.sad_halfpel_nj +
            static_cast<double>(ops.me_invocations) * profile.me_setup_nj) *
           kJ;
  e.dct_j = static_cast<double>(ops.dct_blocks) * profile.dct_block_nj * kJ;
  e.idct_j = static_cast<double>(ops.idct_blocks) * profile.idct_block_nj * kJ;
  e.quant_j =
      (static_cast<double>(ops.quant_coeffs) * profile.quant_coeff_nj +
       static_cast<double>(ops.dequant_coeffs) * profile.dequant_coeff_nj) *
      kJ;
  e.mc_j = (static_cast<double>(ops.mc_pixels) * profile.mc_pixel_nj +
            static_cast<double>(ops.mc_halfpel_pixels) * profile.mc_halfpel_nj) *
           kJ;
  e.vlc_j = static_cast<double>(ops.bits_written) * profile.vlc_bit_nj * kJ;
  e.overhead_j =
      (static_cast<double>(ops.total_mbs()) * profile.mb_overhead_nj +
       static_cast<double>(ops.frames) * profile.frame_overhead_nj) *
      kJ;
  return e;
}

double tx_energy_j(std::uint64_t bytes, const DeviceProfile& profile) {
  return static_cast<double>(bytes) * profile.tx_byte_nj * 1e-9;
}

const DeviceProfile& ipaq_h5555() {
  static const DeviceProfile profile = make_profile("iPAQ H5555", 1.0);
  return profile;
}

const DeviceProfile& zaurus_sl5600() {
  // 32 MB SDRAM part with a slower memory path; scale memory-bound ops.
  static const DeviceProfile profile = make_profile("Zaurus SL-5600", 1.18);
  return profile;
}

}  // namespace pbpair::energy
