// Operation-count → Joule conversion with per-device profiles.
//
// Substitution for the paper's physical power measurement (DESIGN.md §2).
// Profiles are calibrated to a 400 MHz Intel XScale-class core (both the
// iPAQ H5555 and Zaurus SL-5600 use that part) drawing on the order of
// 1 nJ/cycle when active; per-operation costs are cycle estimates for a
// fixed-point H.263 encoder on that core times the per-cycle energy. The
// two PDAs differ in memory system and peripherals, which we reflect as a
// scale factor — the paper likewise reports the same qualitative results on
// both devices.
#pragma once

#include <cstdint>
#include <string>

#include "energy/op_counters.h"

namespace pbpair::energy {

/// Per-operation energy costs in nanojoules.
struct DeviceProfile {
  std::string name;

  double sad_pixel_nj;     // one |a-b| accumulate in ME inner loop
  double sad_halfpel_nj;   // interpolated |a-b| (bilinear + accumulate)
  double me_setup_nj;      // per search invocation (window setup etc.)
  double dct_block_nj;     // one 8x8 forward DCT
  double idct_block_nj;    // one 8x8 inverse DCT
  double quant_coeff_nj;   // quantize one coefficient
  double dequant_coeff_nj; // dequantize one coefficient
  double mc_pixel_nj;      // fetch one full-pel prediction pixel
  double mc_halfpel_nj;    // interpolate one half-pel prediction pixel
  double vlc_bit_nj;       // emit one bit of entropy-coded output
  double mb_overhead_nj;   // per-MB control/bookkeeping
  double frame_overhead_nj;// per-frame control (headers, loop setup)

  double tx_byte_nj;       // WLAN transmit energy per payload byte
};

/// Breakdown of encoding energy by operation class, in Joules.
struct EnergyBreakdown {
  double me_j = 0.0;
  double dct_j = 0.0;
  double idct_j = 0.0;
  double quant_j = 0.0;
  double mc_j = 0.0;
  double vlc_j = 0.0;
  double overhead_j = 0.0;

  double total_j() const {
    return me_j + dct_j + idct_j + quant_j + mc_j + vlc_j + overhead_j;
  }
};

/// Computes encoding energy from metered operation counts.
EnergyBreakdown encode_energy(const OpCounters& ops,
                              const DeviceProfile& profile);

/// Transmission energy for a payload of `bytes` (communication energy; kept
/// separate from encoding energy as in the paper's Figure 5(d)).
double tx_energy_j(std::uint64_t bytes, const DeviceProfile& profile);

/// HP iPAQ H5555: 400 MHz XScale, 128 MB SDRAM (paper's primary device).
const DeviceProfile& ipaq_h5555();

/// Sharp Zaurus SL-5600: 400 MHz XScale, 32 MB SDRAM. Slightly costlier
/// memory path than the iPAQ.
const DeviceProfile& zaurus_sl5600();

}  // namespace pbpair::energy
