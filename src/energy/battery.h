// Residual-energy tracking for the power-aware adaptation loop (§3.2).
//
// The paper's extension adjusts Intra_Th "to maximize error resilient level
// within current residual energy constraint". The battery model gives the
// adaptation controller something to budget against: a capacity in Joules
// drained by encode + transmit energy, with a session-length target.
#pragma once

#include "common/check.h"

namespace pbpair::energy {

class Battery {
 public:
  /// capacity_j: usable energy budget for the encoding session, in Joules.
  explicit Battery(double capacity_j)
      : capacity_j_(capacity_j), remaining_j_(capacity_j) {
    PB_CHECK(capacity_j > 0.0);
  }

  double capacity_j() const { return capacity_j_; }
  double remaining_j() const { return remaining_j_; }
  double fraction_remaining() const { return remaining_j_ / capacity_j_; }
  bool depleted() const { return remaining_j_ <= 0.0; }

  /// Drains energy; clamps at zero.
  void drain(double joules) {
    PB_CHECK(joules >= 0.0);
    remaining_j_ -= joules;
    if (remaining_j_ < 0.0) remaining_j_ = 0.0;
  }

 private:
  double capacity_j_;
  double remaining_j_;
};

}  // namespace pbpair::energy
