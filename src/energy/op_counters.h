// Operation counters: the instrumentation half of the energy model.
//
// The paper measured encoding energy physically (DAQ board sampling the
// voltage across a sense resistor on iPAQ/Zaurus PDAs). We cannot measure
// hardware, so the codec meters every energy-relevant operation class while
// it runs, and a device profile converts counts to Joules (see
// energy_model.h and DESIGN.md §2). The classes below follow the paper's
// breakdown of encoder work: motion estimation (dominant), DCT/IDCT,
// quantization, motion compensation, and entropy coding.
#pragma once

#include <cstdint>

namespace pbpair::energy {

struct OpCounters {
  // Motion estimation: one sad_pixel_op is one |a-b| accumulate. This is
  // the dominant term; PBPAIR's savings come almost entirely from here.
  std::uint64_t sad_pixel_ops = 0;
  std::uint64_t sad_halfpel_ops = 0;  // interpolated |a-b| accumulates
  std::uint64_t me_invocations = 0;   // MBs for which a search actually ran

  // Transform path (8x8 blocks; a macroblock is 6 blocks in 4:2:0).
  std::uint64_t dct_blocks = 0;
  std::uint64_t idct_blocks = 0;      // encoder reconstruction + decoder
  std::uint64_t quant_coeffs = 0;
  std::uint64_t dequant_coeffs = 0;

  // Motion compensation pixel fetches (prediction formation);
  // half-pel predictions pay the bilinear interpolation.
  std::uint64_t mc_pixels = 0;
  std::uint64_t mc_halfpel_pixels = 0;

  // Entropy coding output.
  std::uint64_t bits_written = 0;

  // Mode statistics (no direct energy cost; used for reporting and for the
  // per-MB bookkeeping overhead term).
  std::uint64_t intra_mbs = 0;
  std::uint64_t inter_mbs = 0;
  std::uint64_t skip_mbs = 0;
  std::uint64_t frames = 0;

  OpCounters& operator+=(const OpCounters& other) {
    sad_pixel_ops += other.sad_pixel_ops;
    sad_halfpel_ops += other.sad_halfpel_ops;
    me_invocations += other.me_invocations;
    dct_blocks += other.dct_blocks;
    idct_blocks += other.idct_blocks;
    quant_coeffs += other.quant_coeffs;
    dequant_coeffs += other.dequant_coeffs;
    mc_pixels += other.mc_pixels;
    mc_halfpel_pixels += other.mc_halfpel_pixels;
    bits_written += other.bits_written;
    intra_mbs += other.intra_mbs;
    inter_mbs += other.inter_mbs;
    skip_mbs += other.skip_mbs;
    frames += other.frames;
    return *this;
  }

  std::uint64_t total_mbs() const { return intra_mbs + inter_mbs + skip_mbs; }

  void reset() { *this = OpCounters{}; }
};

}  // namespace pbpair::energy
