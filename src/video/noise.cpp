#include "video/noise.h"

#include "common/check.h"

namespace pbpair::video {
namespace {

std::uint64_t mix64(std::uint64_t z) {
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

}  // namespace

int ValueNoise::lattice(int ix, int iy) const {
  std::uint64_t h = seed_;
  h = mix64(h ^ (static_cast<std::uint64_t>(static_cast<std::uint32_t>(ix))
                 << 32 |
                 static_cast<std::uint32_t>(iy)));
  return static_cast<int>(h & 0xFF);
}

int ValueNoise::sample(int x, int y, int cell) const {
  PB_DCHECK(cell >= 1);
  // Floor-divide into lattice cells (handle negatives correctly).
  int ix = x >= 0 ? x / cell : -((-x + cell - 1) / cell);
  int iy = y >= 0 ? y / cell : -((-y + cell - 1) / cell);
  int fx = x - ix * cell;  // in [0, cell)
  int fy = y - iy * cell;

  int v00 = lattice(ix, iy);
  int v10 = lattice(ix + 1, iy);
  int v01 = lattice(ix, iy + 1);
  int v11 = lattice(ix + 1, iy + 1);

  // Bilinear interpolation scaled by cell size; all integer.
  int top = v00 * (cell - fx) + v10 * fx;
  int bot = v01 * (cell - fx) + v11 * fx;
  int val = top * (cell - fy) + bot * fy;
  return val / (cell * cell);
}

int ValueNoise::fractal(int x, int y, int base_cell, int octaves) const {
  PB_CHECK(octaves >= 1 && octaves <= 6);
  int acc = 0;
  int weight_sum = 0;
  for (int o = 0; o < octaves; ++o) {
    int cell = base_cell >> o;
    if (cell < 1) break;
    int w = 1 << (octaves - 1 - o);
    acc += sample(x + o * 7919, y + o * 104729, cell) * w;
    weight_sum += w;
  }
  return weight_sum > 0 ? acc / weight_sum : 128;
}

}  // namespace pbpair::video
