// Image-quality metrics from the paper's evaluation (§4.4).
//
// The paper uses two metrics: average luma PSNR, and the "number of bad
// pixels" — pixels whose reconstructed value differs from the original by
// more than a perceptual threshold (bad pixels arise from network errors or
// from inter-frame dependency on damaged MBs). The paper argues bad-pixel
// count is the better resiliency metric because PSNR depends on *how wrong*
// the bad pixels are, not how many there are.
#pragma once

#include <cstdint>

#include "video/frame.h"

namespace pbpair::video {

/// |a - b| difference threshold above which a pixel counts as "bad".
/// The paper does not publish its threshold; 20 is in the range where a
/// difference is clearly visible on an 8-bit display.
inline constexpr int kDefaultBadPixelThreshold = 20;

/// Sum of squared luma differences.
std::uint64_t sse_luma(const YuvFrame& a, const YuvFrame& b);

/// Mean squared error over the luma plane.
double mse_luma(const YuvFrame& a, const YuvFrame& b);

/// Luma PSNR in dB. Identical frames return `cap_db` (default 99 dB)
/// rather than infinity so averages stay finite.
double psnr_luma(const YuvFrame& a, const YuvFrame& b, double cap_db = 99.0);

/// Number of luma pixels differing by more than `threshold`.
std::uint64_t bad_pixel_count(const YuvFrame& a, const YuvFrame& b,
                              int threshold = kDefaultBadPixelThreshold);

/// Mean luma SSIM over non-overlapping 8x8 windows (uniform window — the
/// classic Gaussian-window variant differs by a few percent; this one is
/// cheap enough for per-frame use, which is what the paper's future-work
/// section asks of a quality metric). Returns a value in [-1, 1]; 1 means
/// identical.
double ssim_luma(const YuvFrame& a, const YuvFrame& b);

}  // namespace pbpair::video
