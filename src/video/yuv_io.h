// Raw planar YUV 4:2:0 file I/O.
//
// The synthetic generators are the default workload, but users with the
// real FOREMAN/AKIYO/GARDEN clips (or any raw 4:2:0 material) can run every
// experiment on them through this reader. The format is the bare
// concatenation of Y, U, V planes per frame (the common ".yuv" convention).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "video/frame.h"

namespace pbpair::video {

/// Reads up to `max_frames` frames (0 = all) of WxH 4:2:0 video.
/// Returns an empty vector if the file cannot be opened or is truncated
/// before the first full frame.
std::vector<YuvFrame> read_yuv_file(const std::string& path, int width,
                                    int height, int max_frames = 0);

/// Appends the frames to a raw .yuv file. Returns false on I/O failure.
bool write_yuv_file(const std::string& path,
                    const std::vector<YuvFrame>& frames);

}  // namespace pbpair::video
