// Planar YUV 4:2:0 frame storage.
//
// The codec operates on 16x16 luma macroblocks (8x8 chroma), so frame
// dimensions are required to be multiples of 16. QCIF (176x144) — the
// paper's evaluation format, 11x9 macroblocks — is the default everywhere.
#pragma once

#include <cstdint>
#include <vector>

#include "common/check.h"

namespace pbpair::video {

/// One 8-bit image plane with row-major storage (stride == width).
class Plane {
 public:
  Plane() = default;
  Plane(int width, int height, std::uint8_t fill = 0)
      : width_(width),
        height_(height),
        data_(static_cast<std::size_t>(width) * height, fill) {
    PB_CHECK(width > 0 && height > 0);
  }

  int width() const { return width_; }
  int height() const { return height_; }

  std::uint8_t at(int x, int y) const {
    PB_DCHECK(x >= 0 && x < width_ && y >= 0 && y < height_);
    return data_[static_cast<std::size_t>(y) * width_ + x];
  }
  void set(int x, int y, std::uint8_t v) {
    PB_DCHECK(x >= 0 && x < width_ && y >= 0 && y < height_);
    data_[static_cast<std::size_t>(y) * width_ + x] = v;
  }

  /// Clamped read: coordinates outside the plane are clamped to the edge.
  /// Used by motion compensation at frame borders.
  std::uint8_t at_clamped(int x, int y) const {
    if (x < 0) x = 0;
    if (x >= width_) x = width_ - 1;
    if (y < 0) y = 0;
    if (y >= height_) y = height_ - 1;
    return data_[static_cast<std::size_t>(y) * width_ + x];
  }

  const std::uint8_t* row(int y) const {
    PB_DCHECK(y >= 0 && y < height_);
    return data_.data() + static_cast<std::size_t>(y) * width_;
  }
  std::uint8_t* row(int y) {
    PB_DCHECK(y >= 0 && y < height_);
    return data_.data() + static_cast<std::size_t>(y) * width_;
  }

  const std::vector<std::uint8_t>& data() const { return data_; }
  std::vector<std::uint8_t>& data() { return data_; }

  void fill(std::uint8_t v) { std::fill(data_.begin(), data_.end(), v); }

  bool same_size(const Plane& other) const {
    return width_ == other.width_ && height_ == other.height_;
  }

  bool operator==(const Plane& other) const = default;

 private:
  int width_ = 0;
  int height_ = 0;
  std::vector<std::uint8_t> data_;
};

/// A YUV 4:2:0 frame. Luma is width x height; chroma planes are half size
/// in each dimension.
class YuvFrame {
 public:
  YuvFrame() = default;
  YuvFrame(int width, int height);

  int width() const { return y_.width(); }
  int height() const { return y_.height(); }
  int mb_cols() const { return y_.width() / 16; }
  int mb_rows() const { return y_.height() / 16; }
  int mb_count() const { return mb_cols() * mb_rows(); }

  const Plane& y() const { return y_; }
  Plane& y() { return y_; }
  const Plane& u() const { return u_; }
  Plane& u() { return u_; }
  const Plane& v() const { return v_; }
  Plane& v() { return v_; }

  bool same_size(const YuvFrame& other) const {
    return y_.same_size(other.y_);
  }

  /// Fills all planes with a mid-gray (Y=128, U=V=128).
  void fill_gray();

  bool operator==(const YuvFrame& other) const = default;

 private:
  Plane y_;
  Plane u_;
  Plane v_;
};

/// Standard frame sizes used in the paper's evaluation.
inline constexpr int kQcifWidth = 176;
inline constexpr int kQcifHeight = 144;
inline constexpr int kCifWidth = 352;
inline constexpr int kCifHeight = 288;

/// Creates a QCIF frame (176x144, the paper's evaluation format).
YuvFrame make_qcif_frame();

}  // namespace pbpair::video
