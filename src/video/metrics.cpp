#include "video/metrics.h"

#include <cmath>

#include "common/check.h"
#include "common/math_util.h"

namespace pbpair::video {

std::uint64_t sse_luma(const YuvFrame& a, const YuvFrame& b) {
  PB_CHECK(a.same_size(b));
  std::uint64_t sse = 0;
  const Plane& pa = a.y();
  const Plane& pb = b.y();
  for (int y = 0; y < pa.height(); ++y) {
    const std::uint8_t* ra = pa.row(y);
    const std::uint8_t* rb = pb.row(y);
    for (int x = 0; x < pa.width(); ++x) {
      int d = static_cast<int>(ra[x]) - static_cast<int>(rb[x]);
      sse += static_cast<std::uint64_t>(d) * static_cast<std::uint64_t>(d);
    }
  }
  return sse;
}

double mse_luma(const YuvFrame& a, const YuvFrame& b) {
  std::uint64_t sse = sse_luma(a, b);
  double n = static_cast<double>(a.width()) * a.height();
  return static_cast<double>(sse) / n;
}

double psnr_luma(const YuvFrame& a, const YuvFrame& b, double cap_db) {
  double mse = mse_luma(a, b);
  if (mse <= 0.0) return cap_db;
  double psnr = 10.0 * std::log10(255.0 * 255.0 / mse);
  return psnr > cap_db ? cap_db : psnr;
}

std::uint64_t bad_pixel_count(const YuvFrame& a, const YuvFrame& b,
                              int threshold) {
  PB_CHECK(a.same_size(b));
  std::uint64_t count = 0;
  const Plane& pa = a.y();
  const Plane& pb = b.y();
  for (int y = 0; y < pa.height(); ++y) {
    const std::uint8_t* ra = pa.row(y);
    const std::uint8_t* rb = pb.row(y);
    for (int x = 0; x < pa.width(); ++x) {
      if (common::iabs(static_cast<int>(ra[x]) - static_cast<int>(rb[x])) >
          threshold) {
        ++count;
      }
    }
  }
  return count;
}

double ssim_luma(const YuvFrame& a, const YuvFrame& b) {
  PB_CHECK(a.same_size(b));
  // Standard SSIM constants for 8-bit depth.
  constexpr double kC1 = (0.01 * 255.0) * (0.01 * 255.0);
  constexpr double kC2 = (0.03 * 255.0) * (0.03 * 255.0);
  const Plane& pa = a.y();
  const Plane& pb = b.y();
  double total = 0.0;
  int windows = 0;
  for (int wy = 0; wy + 8 <= pa.height(); wy += 8) {
    for (int wx = 0; wx + 8 <= pa.width(); wx += 8) {
      // Integer accumulators over the 8x8 window.
      std::int64_t sum_a = 0, sum_b = 0, sum_aa = 0, sum_bb = 0, sum_ab = 0;
      for (int y = 0; y < 8; ++y) {
        const std::uint8_t* ra = pa.row(wy + y) + wx;
        const std::uint8_t* rb = pb.row(wy + y) + wx;
        for (int x = 0; x < 8; ++x) {
          int va = ra[x];
          int vb = rb[x];
          sum_a += va;
          sum_b += vb;
          sum_aa += va * va;
          sum_bb += vb * vb;
          sum_ab += va * vb;
        }
      }
      constexpr double kN = 64.0;
      double mu_a = static_cast<double>(sum_a) / kN;
      double mu_b = static_cast<double>(sum_b) / kN;
      double var_a = static_cast<double>(sum_aa) / kN - mu_a * mu_a;
      double var_b = static_cast<double>(sum_bb) / kN - mu_b * mu_b;
      double cov = static_cast<double>(sum_ab) / kN - mu_a * mu_b;
      double ssim = ((2.0 * mu_a * mu_b + kC1) * (2.0 * cov + kC2)) /
                    ((mu_a * mu_a + mu_b * mu_b + kC1) *
                     (var_a + var_b + kC2));
      total += ssim;
      ++windows;
    }
  }
  return windows > 0 ? total / windows : 1.0;
}

}  // namespace pbpair::video
