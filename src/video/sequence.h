// Procedural video sequences standing in for the paper's test clips.
//
// The paper evaluates on three 300-frame QCIF clips whose motion activity
// spans the spectrum: AKIYO (news anchor, near-static), FOREMAN (handheld
// camera, moderate motion), GARDEN (panning camera over flower garden, high
// motion and detail). The clips themselves are not redistributable, so we
// generate deterministic synthetic equivalents that preserve the property
// the experiments depend on: the motion-activity and detail ordering
// akiyo < foreman < garden, which drives SAD distributions, intra/inter
// decisions, bit rates, and concealment quality. See DESIGN.md §2.
//
// Frames are produced by random access (`frame_at(i)`), fully determined by
// (kind, size, seed, i); there is no hidden generator state.
#pragma once

#include <cstdint>
#include <string>

#include "video/frame.h"

namespace pbpair::video {

enum class SequenceKind {
  kAkiyoLike,    // static background, small head-and-shoulders motion
  kForemanLike,  // camera jitter + moving face, moderate motion
  kGardenLike,   // global pan over high-detail texture, high motion
};

/// Human-readable name used in benchmark output tables ("akiyo" etc.).
const char* sequence_kind_name(SequenceKind kind);

/// Deterministic procedural sequence.
class SyntheticSequence {
 public:
  SyntheticSequence(SequenceKind kind, int width, int height,
                    std::uint64_t seed);

  int width() const { return width_; }
  int height() const { return height_; }
  SequenceKind kind() const { return kind_; }

  /// Generates frame `index` (>= 0). Pure function of the constructor
  /// arguments and `index`.
  YuvFrame frame_at(int index) const;

 private:
  struct Sprite {
    int cx;            // rest center x (luma pixels)
    int cy;            // rest center y
    int rx;            // ellipse x radius
    int ry;            // ellipse y radius
    int amp_x;         // horizontal motion amplitude
    int amp_y;         // vertical motion amplitude
    int period;        // motion period in frames
    int phase;         // phase offset in frames
    int tex_offset;    // noise-space offset so sprites get distinct texture
    int chroma_u;      // mean U inside the sprite
    int chroma_v;      // mean V inside the sprite
  };

  void global_offset(int index, int* off_x, int* off_y) const;
  int sprite_count() const;
  Sprite sprite(int which, int index) const;

  SequenceKind kind_;
  int width_;
  int height_;
  std::uint64_t seed_;
};

/// Convenience factory for the paper's QCIF evaluation clips.
SyntheticSequence make_paper_sequence(SequenceKind kind,
                                      std::uint64_t seed = 2005);

}  // namespace pbpair::video
