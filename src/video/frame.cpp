#include "video/frame.h"

namespace pbpair::video {

YuvFrame::YuvFrame(int width, int height)
    : y_(width, height), u_(width / 2, height / 2), v_(width / 2, height / 2) {
  PB_CHECK(width % 16 == 0 && height % 16 == 0);
}

void YuvFrame::fill_gray() {
  y_.fill(128);
  u_.fill(128);
  v_.fill(128);
}

YuvFrame make_qcif_frame() { return YuvFrame(kQcifWidth, kQcifHeight); }

}  // namespace pbpair::video
