#include "video/yuv_io.h"

#include <cstdio>

namespace pbpair::video {
namespace {

bool read_plane(std::FILE* f, Plane& plane) {
  std::size_t want = plane.data().size();
  return std::fread(plane.data().data(), 1, want, f) == want;
}

bool write_plane(std::FILE* f, const Plane& plane) {
  std::size_t want = plane.data().size();
  return std::fwrite(plane.data().data(), 1, want, f) == want;
}

}  // namespace

std::vector<YuvFrame> read_yuv_file(const std::string& path, int width,
                                    int height, int max_frames) {
  std::vector<YuvFrame> frames;
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return frames;
  while (max_frames == 0 || static_cast<int>(frames.size()) < max_frames) {
    YuvFrame frame(width, height);
    if (!read_plane(f, frame.y()) || !read_plane(f, frame.u()) ||
        !read_plane(f, frame.v())) {
      break;
    }
    frames.push_back(std::move(frame));
  }
  std::fclose(f);
  return frames;
}

bool write_yuv_file(const std::string& path,
                    const std::vector<YuvFrame>& frames) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  bool ok = true;
  for (const YuvFrame& frame : frames) {
    ok = ok && write_plane(f, frame.y()) && write_plane(f, frame.u()) &&
         write_plane(f, frame.v());
  }
  std::fclose(f);
  return ok;
}

}  // namespace pbpair::video
