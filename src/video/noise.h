// Integer value-noise for procedural video content.
//
// The synthetic sequence generators need spatially-correlated texture with
// controllable detail so that the three workload classes (akiyo-like /
// foreman-like / garden-like) expose the same motion-activity ordering the
// paper's clips do. All arithmetic is integer: a hashed lattice of 8-bit
// values with bilinear interpolation, summed over octaves.
#pragma once

#include <cstdint>

namespace pbpair::video {

/// Deterministic 2-D value noise field. Same (seed, x, y) always yields the
/// same sample, on any platform.
class ValueNoise {
 public:
  explicit ValueNoise(std::uint64_t seed) : seed_(seed) {}

  /// Noise sample in [0, 255] at integer coordinates with the given lattice
  /// cell size (larger cell => smoother noise). cell must be >= 1.
  int sample(int x, int y, int cell) const;

  /// Multi-octave sample in [0, 255]: octave o uses cell >> o, weight >> o.
  /// octaves in [1, 6].
  int fractal(int x, int y, int base_cell, int octaves) const;

 private:
  /// Hash of one lattice point to [0, 255].
  int lattice(int ix, int iy) const;

  std::uint64_t seed_;
};

}  // namespace pbpair::video
