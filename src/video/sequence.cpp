#include "video/sequence.h"

#include "common/math_util.h"
#include "common/rng.h"
#include "video/noise.h"

namespace pbpair::video {
namespace {

// Quarter-wave integer sine table: kSinTable[i] = round(256*sin(pi/2*i/64)).
constexpr int kSinTable[65] = {
    0,   6,   13,  19,  25,  31,  38,  44,  50,  56,  62,  69,  75,
    81,  87,  93,  98,  104, 109, 115, 121, 126, 132, 137, 142, 147,
    152, 158, 162, 167, 172, 177, 181, 185, 190, 194, 198, 202, 206,
    209, 213, 216, 220, 223, 226, 229, 231, 234, 236, 239, 241, 243,
    245, 247, 248, 250, 251, 252, 253, 254, 255, 255, 256, 256, 256};

// 256-step sine, returns sin(2*pi*t/period) scaled to [-256, 256].
int sin_q8(int t, int period) {
  if (period <= 0) return 0;
  // Map t into [0, 256) phase units. Callers pass t >= 0.
  long long phase256 = (static_cast<long long>(t % period) * 256) / period;
  int p = static_cast<int>(phase256 & 255);
  int quadrant = p >> 6;   // 0..3
  int idx = p & 63;        // 0..63
  switch (quadrant) {
    case 0: return kSinTable[idx];
    case 1: return kSinTable[64 - idx];
    case 2: return -kSinTable[idx];
    default: return -kSinTable[64 - idx];
  }
}

std::uint64_t hash2(std::uint64_t seed, std::uint64_t a, std::uint64_t b) {
  common::SplitMix64 mixer(seed ^ (a * 0x9E3779B97F4A7C15ULL) ^
                           (b * 0xC2B2AE3D27D4EB4FULL));
  return mixer.next();
}

}  // namespace

const char* sequence_kind_name(SequenceKind kind) {
  switch (kind) {
    case SequenceKind::kAkiyoLike: return "akiyo";
    case SequenceKind::kForemanLike: return "foreman";
    case SequenceKind::kGardenLike: return "garden";
  }
  return "unknown";
}

SyntheticSequence::SyntheticSequence(SequenceKind kind, int width, int height,
                                     std::uint64_t seed)
    : kind_(kind), width_(width), height_(height), seed_(seed) {
  PB_CHECK(width % 16 == 0 && height % 16 == 0);
}

void SyntheticSequence::global_offset(int index, int* off_x,
                                      int* off_y) const {
  switch (kind_) {
    case SequenceKind::kAkiyoLike:
      // Tripod camera: perfectly static background.
      *off_x = 0;
      *off_y = 0;
      return;
    case SequenceKind::kForemanLike: {
      // Handheld jitter: bounded random walk derived from a per-frame hash
      // so frame_at stays random-access. Walk amplitude about +/-3 px.
      int wx = 0, wy = 0;
      // Sum the last 6 per-frame steps; older steps are forgotten, which
      // bounds the walk while keeping frame-to-frame deltas of 0..1 px.
      for (int k = index > 6 ? index - 6 : 0; k < index; ++k) {
        std::uint64_t h = hash2(seed_, 0xF0F0, static_cast<std::uint64_t>(k));
        wx += static_cast<int>(h % 3) - 1;
        wy += static_cast<int>((h >> 8) % 3) - 1;
      }
      *off_x = wx;
      *off_y = wy;
      return;
    }
    case SequenceKind::kGardenLike:
      // Constant pan, ~2.5 px/frame horizontal and slight vertical drift:
      // the whole frame moves, so every MB sees motion.
      *off_x = (index * 5) / 2;
      *off_y = index / 4;
      return;
  }
  *off_x = 0;
  *off_y = 0;
}

int SyntheticSequence::sprite_count() const {
  switch (kind_) {
    case SequenceKind::kAkiyoLike: return 2;   // head + mouth region
    case SequenceKind::kForemanLike: return 2; // face + helmet
    case SequenceKind::kGardenLike: return 0;  // pure global motion
  }
  return 0;
}

SyntheticSequence::Sprite SyntheticSequence::sprite(int which,
                                                    int index) const {
  Sprite s{};
  const int w = width_;
  const int h = height_;
  if (kind_ == SequenceKind::kAkiyoLike) {
    if (which == 0) {
      // Head: large ellipse, very small sway (~2 px over ~60 frames).
      s = Sprite{w / 2, h * 2 / 5, w / 6, h / 4, 2,    1,   64, 0,
                 5000,  118,       132};
    } else {
      // Mouth/jaw region: small ellipse with faster small bob (talking).
      s = Sprite{w / 2, h / 2, w / 14, h / 18, 1,    2,   12, 3,
                 9000,  120,   134};
    }
  } else {  // foreman-like
    if (which == 0) {
      // Face: bigger sway than akiyo (~6 px), moderate period.
      s = Sprite{w / 2, h / 2, w / 5, h / 3, 6,    4,   40, 0,
                 7000,  116,   136};
    } else {
      // Helmet above the face, moves in (loose) sync with it.
      s = Sprite{w / 2, h / 4, w / 4, h / 6, 6,    3,   40, 5,
                 3000,  124,   124};
    }
  }
  // Apply sinusoidal displacement for this frame.
  s.cx += (s.amp_x * sin_q8(index + s.phase, s.period)) / 256;
  s.cy += (s.amp_y * sin_q8(2 * (index + s.phase), s.period)) / 256;
  return s;
}

YuvFrame SyntheticSequence::frame_at(int index) const {
  PB_CHECK(index >= 0);
  YuvFrame frame(width_, height_);
  ValueNoise bg_noise(seed_ ^ 0xA11CE);
  ValueNoise sprite_noise(seed_ ^ 0xB0B);
  ValueNoise chroma_noise(seed_ ^ 0xCAFE);

  int off_x = 0, off_y = 0;
  global_offset(index, &off_x, &off_y);

  // Background detail per kind: garden has fine texture (small cells, more
  // octaves) so panning generates large SADs; akiyo is smooth.
  int base_cell, octaves, dyn_lo, dyn_hi;
  switch (kind_) {
    case SequenceKind::kAkiyoLike:
      base_cell = 48; octaves = 2; dyn_lo = 70; dyn_hi = 190;
      break;
    case SequenceKind::kForemanLike:
      base_cell = 24; octaves = 3; dyn_lo = 55; dyn_hi = 205;
      break;
    case SequenceKind::kGardenLike:
    default:
      base_cell = 10; octaves = 4; dyn_lo = 40; dyn_hi = 220;
      break;
  }

  const int n_sprites = sprite_count();
  Sprite sprites[4];
  for (int i = 0; i < n_sprites; ++i) sprites[i] = sprite(i, index);

  Plane& yp = frame.y();
  for (int y = 0; y < height_; ++y) {
    for (int x = 0; x < width_; ++x) {
      int wx = x + off_x;
      int wy = y + off_y;
      int val = bg_noise.fractal(wx, wy, base_cell, octaves);
      // Check sprites front-to-back (later sprites drawn on top).
      for (int i = n_sprites - 1; i >= 0; --i) {
        const Sprite& s = sprites[i];
        long long dx = x - s.cx;
        long long dy = y - s.cy;
        // Ellipse interior test without division:
        // (dx/rx)^2 + (dy/ry)^2 <= 1  <=>  (dx*ry)^2 + (dy*rx)^2 <= (rx*ry)^2
        long long lhs = dx * dx * s.ry * s.ry + dy * dy * s.rx * s.rx;
        long long rhs = static_cast<long long>(s.rx) * s.rx * s.ry * s.ry;
        if (lhs <= rhs) {
          // Sprite texture is sampled in sprite-local coordinates so it
          // moves rigidly with the sprite (true motion, not boiling).
          val = sprite_noise.fractal(static_cast<int>(dx) + s.tex_offset,
                                     static_cast<int>(dy) + s.tex_offset,
                                     16, 2);
          break;
        }
      }
      int pixel = dyn_lo + (val * (dyn_hi - dyn_lo)) / 255;
      if (kind_ == SequenceKind::kAkiyoLike) {
        // Studio sensor noise, +/-2 gray levels, varying per frame. Real
        // AKIYO has this; without it the background is mathematically
        // static, copy concealment is *perfect*, and no rational refresh
        // scheme would ever spend bits there (see DESIGN.md §2). The noise
        // is below the encoder's dead zone, so bitrate stays "akiyo-low".
        std::uint64_t h =
            hash2(seed_ ^ 0x5E4503, static_cast<std::uint64_t>(index),
                  (static_cast<std::uint64_t>(y) << 20) | static_cast<std::uint64_t>(x));
        pixel += static_cast<int>(h % 5) - 2;
      }
      yp.set(x, y, common::clamp_pixel(pixel));
    }
  }

  // Chroma: smooth fields around neutral, plus sprite tints. Sampled at
  // half resolution directly.
  Plane& up = frame.u();
  Plane& vp = frame.v();
  for (int cy = 0; cy < height_ / 2; ++cy) {
    for (int cx = 0; cx < width_ / 2; ++cx) {
      int wx = cx * 2 + off_x;
      int wy = cy * 2 + off_y;
      int un = chroma_noise.fractal(wx, wy, base_cell * 2, 2);
      int vn = chroma_noise.fractal(wx + 31337, wy + 271, base_cell * 2, 2);
      int u = 128 + (un - 128) / 4;
      int v = 128 + (vn - 128) / 4;
      for (int i = n_sprites - 1; i >= 0; --i) {
        const Sprite& s = sprites[i];
        long long dx = cx * 2 - s.cx;
        long long dy = cy * 2 - s.cy;
        long long lhs = dx * dx * s.ry * s.ry + dy * dy * s.rx * s.rx;
        long long rhs = static_cast<long long>(s.rx) * s.rx * s.ry * s.ry;
        if (lhs <= rhs) {
          u = s.chroma_u;
          v = s.chroma_v;
          break;
        }
      }
      up.set(cx, cy, common::clamp_pixel(u));
      vp.set(cx, cy, common::clamp_pixel(v));
    }
  }
  return frame;
}

SyntheticSequence make_paper_sequence(SequenceKind kind, std::uint64_t seed) {
  return SyntheticSequence(kind, kQcifWidth, kQcifHeight, seed);
}

}  // namespace pbpair::video
