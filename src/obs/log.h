// Structured leveled logging: JSONL records to stderr or a file.
//
// Design rules (DESIGN.md §10):
//  - One record per line, always valid JSON:
//      {"ts": 1722873600.123456, "level": "warn",
//       "site": "session_manager.cpp:72", "msg": "..."}
//    Message text is json-escaped, so hostile content cannot break the
//    stream. Records are written atomically under one mutex.
//  - Deterministic mode (set_log_deterministic, the CLI's --deterministic)
//    strips the wall-clock "ts" field and disables the clock-driven rate
//    limiter, so the emitted records are a pure function of the workload.
//  - Each PB_LOG_* expansion site owns a token bucket (kLogBurst tokens,
//    kLogRefillPerSec refill): a hot loop that logs per packet degrades to
//    a few records per second plus a "suppressed" count on the next record
//    that gets through, never an unbounded stream. Suppression is never
//    silent: drops are counted in the obs.log.suppressed registry counter
//    AND per site (obs.log.suppressed.<file>:<line>), and a one-line
//    summary goes to stderr at process exit when anything was dropped.
//  - Logging is independent of obs::enabled(): diagnostics must work even
//    when the metrics/trace layer is off. The level gate is one relaxed
//    atomic load, so disabled levels cost nothing on hot paths.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

namespace pbpair::obs {

class Counter;

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// "debug" / "info" / "warn" / "error".
const char* log_level_name(LogLevel level);

/// Records below this level are dropped at the macro site. Default kWarn:
/// the library stays quiet unless something is wrong; tools opt into
/// kInfo/kDebug (--verbose).
void set_log_min_level(LogLevel level);
LogLevel log_min_level();

/// Routes records to `path` (JSONL, truncating) instead of stderr; an
/// empty path switches back to stderr. Returns false when the file cannot
/// be opened (records keep going to stderr).
bool set_log_json_path(const std::string& path);

/// Flushes and closes a file sink opened by set_log_json_path (records go
/// back to stderr). No-op when logging to stderr.
void close_log_json();

/// Strips "ts" from records and disables the per-site rate limiter so the
/// log stream is byte-reproducible for seeded workloads.
void set_log_deterministic(bool on);
bool log_deterministic();

/// Total records dropped by per-site rate limiting since process start.
std::uint64_t log_suppressed_total();

/// Per-call-site state for the token-bucket rate limiter. One static
/// instance lives at each PB_LOG_* expansion; constant-initialized so the
/// macro is usable before main().
struct LogSite {
  std::atomic<std::int64_t> last_refill_ns{-1};
  std::atomic<double> tokens{-1.0};  // -1: bucket not yet initialized
  std::atomic<std::uint64_t> suppressed{0};
  /// Per-site "obs.log.suppressed.<file>:<line>" handle, resolved on the
  /// site's first suppression (the slow path already holds the log mutex).
  std::atomic<Counter*> suppressed_counter{nullptr};
};

/// Level gate + token bucket. True when the record should be emitted.
/// `file`/`line` name the site's per-site suppression counter.
bool log_should_emit(LogSite& site, LogLevel level, const char* file,
                     int line);

/// Formats and writes one record (printf semantics for `fmt`). Any count
/// the site suppressed since its last emitted record is attached as
/// "suppressed": N and reset.
void log_emit(LogSite& site, LogLevel level, const char* file, int line,
              const char* fmt, ...) __attribute__((format(printf, 5, 6)));

}  // namespace pbpair::obs

#define PB_LOG_AT(level_, ...)                                              \
  do {                                                                      \
    static ::pbpair::obs::LogSite pb_log_site_;                             \
    if (::pbpair::obs::log_should_emit(pb_log_site_, (level_), __FILE__,    \
                                       __LINE__)) {                         \
      ::pbpair::obs::log_emit(pb_log_site_, (level_), __FILE__, __LINE__,   \
                              __VA_ARGS__);                                 \
    }                                                                       \
  } while (0)

#define PB_LOG_DEBUG(...) \
  PB_LOG_AT(::pbpair::obs::LogLevel::kDebug, __VA_ARGS__)
#define PB_LOG_INFO(...) PB_LOG_AT(::pbpair::obs::LogLevel::kInfo, __VA_ARGS__)
#define PB_LOG_WARN(...) PB_LOG_AT(::pbpair::obs::LogLevel::kWarn, __VA_ARGS__)
#define PB_LOG_ERROR(...) \
  PB_LOG_AT(::pbpair::obs::LogLevel::kError, __VA_ARGS__)
