// Per-session health tracking: sliding-window QoS/energy estimators and a
// HEALTHY / DEGRADED / CRITICAL state machine with hysteresis.
//
// This is the live-telemetry face of the paper's §3.2 signals: the
// power-awareness loop adapts Intra_Th from network feedback and residual
// energy, and an operator of a many-session deployment needs to see those
// same signals while the server runs. Each sim::StreamSession with
// PipelineConfig::health set feeds one SessionHealth per frame; the HTTP
// exporter's /healthz renders every live session's snapshot.
//
// Same invariant as the rest of src/obs/ (DESIGN.md §8): health tracking
// READS, it never perturbs. Estimators consume only deterministic
// per-frame results (PSNR, byte counts, packet counts, analytic joules),
// so enabling tracking cannot change a single output byte
// (tests/test_telemetry.cpp asserts bitstream/report/joules identity on vs
// off). The one deliberate exception is HealthConfig::on_transition: an
// OFF-BY-DEFAULT hook that adaptation policies may use to nudge Intra_Th —
// anything it mutates is the caller's policy, outside this module.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace pbpair::obs {

enum class HealthState { kHealthy = 0, kDegraded = 1, kCritical = 2 };

/// "healthy" / "degraded" / "critical".
const char* health_state_name(HealthState state);

/// Enter/exit threshold pairs implement the hysteresis: a session
/// escalates the moment a windowed estimate crosses `enter`, but only
/// de-escalates once the estimate is back past the stricter `exit`, so a
/// stream hovering at a boundary cannot flap between states every frame.
struct HealthThresholds {
  double plr_degraded_enter = 0.10;
  double plr_degraded_exit = 0.07;
  double plr_critical_enter = 0.25;
  double plr_critical_exit = 0.18;
  double psnr_degraded_enter_db = 30.0;
  double psnr_degraded_exit_db = 31.5;
  double psnr_critical_enter_db = 24.0;
  double psnr_critical_exit_db = 26.0;
};

struct HealthSnapshot;

struct HealthConfig {
  /// Sliding-window length W in frames for the windowed means.
  int window_frames = 30;
  /// EWMA smoothing factor for the PSNR trend estimate.
  double ewma_alpha = 0.1;
  /// Frames observed before the state machine may leave HEALTHY (a cold
  /// window full of startup intra frames should not trip thresholds).
  int warmup_frames = 10;
  /// Projects the windowed J/frame drain rate to wall time.
  double frame_rate_hz = 30.0;
  /// Residual-energy budget (energy/battery.h semantics) for the
  /// projected-lifetime estimate. The default is on the order of a PDA
  /// battery's usable capacity.
  double battery_capacity_j = 12000.0;
  HealthThresholds thresholds;
  /// Optional transition hook (label, from, to, snapshot at transition).
  /// OFF by default; with it unset, health tracking is guaranteed
  /// perturbation-free. Runs under the session's health lock: consume the
  /// provided snapshot, never call back into the SessionHealth.
  std::function<void(const std::string& label, HealthState from,
                     HealthState to, const HealthSnapshot& snapshot)>
      on_transition;
};

/// One frame's worth of telemetry input, as observed by the session.
struct FrameHealthSample {
  double psnr_db = 0.0;
  std::uint64_t bytes = 0;             // encoded frame size
  std::uint32_t packets_sent = 0;      // offered to the channel
  std::uint32_t packets_delivered = 0; // survived it
  std::uint32_t intra_mbs = 0;
  std::uint32_t total_mbs = 0;
  double energy_j = 0.0;  // encode+tx joules attributable to this frame
};

/// Point-in-time view of one session's estimators and state.
struct HealthSnapshot {
  HealthState state = HealthState::kHealthy;
  std::uint64_t frames = 0;
  std::uint64_t transitions = 0;
  double psnr_window_db = 0.0;  // windowed mean over the last W frames
  double psnr_ewma_db = 0.0;
  double eff_plr = 0.0;  // windowed 1 - delivered/sent (effective PLR)
  double bytes_per_frame = 0.0;
  double intra_ratio = 0.0;  // windowed intra MBs / total MBs
  double energy_j_per_frame = 0.0;
  double battery_remaining_j = 0.0;
  double projected_lifetime_s = 0.0;  // remaining_j / (J/frame * fps)
};

/// Sliding-window estimators + state machine for one session. on_frame()
/// is called from the session's worker; snapshot() from the exporter
/// thread — a per-session mutex (only ever touched when health tracking
/// is on) keeps the two consistent.
class SessionHealth {
 public:
  SessionHealth(std::string label, HealthConfig config);

  void on_frame(const FrameHealthSample& sample);
  HealthSnapshot snapshot() const;
  const std::string& label() const { return label_; }

 private:
  // Callers hold mutex_.
  HealthSnapshot snapshot_locked() const;
  void update_state_locked();
  void publish_metrics_locked() const;

  const std::string label_;
  const HealthConfig config_;

  mutable std::mutex mutex_;
  std::vector<FrameHealthSample> window_;  // ring buffer of the last W
  std::size_t window_next_ = 0;
  std::uint64_t frames_ = 0;
  double psnr_ewma_db_ = 0.0;
  double energy_total_j_ = 0.0;

  // Windowed running sums, maintained incrementally.
  double psnr_sum_ = 0.0;
  std::uint64_t bytes_sum_ = 0;
  std::uint64_t sent_sum_ = 0;
  std::uint64_t delivered_sum_ = 0;
  std::uint64_t intra_sum_ = 0;
  std::uint64_t mbs_sum_ = 0;
  double energy_sum_j_ = 0.0;

  HealthState state_ = HealthState::kHealthy;
  std::uint64_t transitions_ = 0;
};

/// Fleet-wide health distribution at one instant — the aggregate signal
/// admission control (sim/admission.h) keys its shedding decisions off.
struct HealthStateCounts {
  int healthy = 0;
  int degraded = 0;
  int critical = 0;

  int total() const { return healthy + degraded + critical; }
  /// Fraction of sessions at or past DEGRADED; 0 when no sessions exist.
  double pressure() const {
    const int n = total();
    return n > 0 ? static_cast<double>(degraded + critical) / n : 0.0;
  }
};

/// Process-wide directory of live sessions, keyed by obs label — what
/// GET /healthz renders. Sessions register on construction (create
/// replaces any previous holder of the same label, e.g. across repeated
/// runs in one process) and stay visible after the session object dies,
/// so a lingering exporter still shows the final states.
class HealthRegistry {
 public:
  static HealthRegistry& global();

  std::shared_ptr<SessionHealth> create(const std::string& label,
                                        const HealthConfig& config);

  /// Snapshot of every registered session, sorted by label.
  std::vector<std::shared_ptr<SessionHealth>> sessions() const;

  /// Per-state session counts across the whole registry — one snapshot()
  /// per session, so the result is as consistent as /healthz itself.
  HealthStateCounts state_counts() const;

  /// {"sessions": [{"session": "s000", "state": "healthy", ...}, ...],
  ///  "states": {"healthy": N, "degraded": N, "critical": N}}
  std::string healthz_json() const;

  void clear();

 private:
  mutable std::mutex mutex_;
  std::vector<std::shared_ptr<SessionHealth>> sessions_;
};

}  // namespace pbpair::obs
