#include "obs/metrics.h"

#include <array>
#include <bit>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "obs/trace.h"

namespace pbpair::obs {
namespace {

// -1 = not yet initialized from the environment.
std::atomic<int> g_enabled{-1};

int read_env_enabled() {
  const char* env = std::getenv("PBPAIR_TRACE");
  return (env != nullptr && env[0] != '\0' && std::strcmp(env, "0") != 0) ? 1
                                                                          : 0;
}

/// Appends `value` as a JSON number. Counters are exact (uint64); doubles
/// use %.17g so round-tripping is lossless.
void append_uint(std::string* out, std::uint64_t value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%llu",
                static_cast<unsigned long long>(value));
  *out += buf;
}

void append_int(std::string* out, std::int64_t value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(value));
  *out += buf;
}

void append_double(std::string* out, double value) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  *out += buf;
}

bool has_ns_suffix(const std::string& name) {
  return name.size() >= 3 && name.compare(name.size() - 3, 3, "_ns") == 0;
}

std::uint64_t next_registry_uid() {
  // Starts at 1 so uid 0 can mean "cache empty". Never reused, so a
  // thread-local cache keyed by uid can never alias a destroyed registry
  // (test-local registries come and go; the global one is leaked).
  static std::atomic<std::uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

/// One histogram's per-thread accumulation cell.
struct HistCell {
  std::atomic<std::uint64_t> buckets[Histogram::kBucketCount + 1] = {};
  std::atomic<std::uint64_t> count{0};
  std::atomic<std::int64_t> sum{0};
};

/// Per-thread pointer cache: metric id -> this thread's shard cell in the
/// registry identified by `uid`. One cache per thread (not per
/// thread×registry): switching registries resets it, which only costs a
/// re-fill through the slow path — the hot path runs against a single
/// registry. Stale pointers from a previous uid are never dereferenced
/// because the uid check fails first.
struct TlsCache {
  std::uint64_t uid = 0;
  std::vector<std::atomic<std::uint64_t>*> counters;
  std::vector<HistCell*> hists;
};

TlsCache& tls_cache() {
  thread_local TlsCache cache;
  return cache;
}

int histogram_bucket_index(std::int64_t value_ns) {
  // Bucket i holds values < 2^(kFirstBucketLog2 + i), so the bucket index
  // is just the value's bit width — one CLZ instead of a 28-way scan,
  // cheap enough to time every packet on the wire path.
  int bucket = 0;
  if (value_ns >= (std::int64_t{1} << Histogram::kFirstBucketLog2)) {
    bucket = std::bit_width(static_cast<std::uint64_t>(value_ns)) -
             Histogram::kFirstBucketLog2;
    if (bucket > Histogram::kBucketCount) {
      bucket = Histogram::kBucketCount;  // overflow slot
    }
  }
  return bucket;
}

}  // namespace

bool enabled() {
  int v = g_enabled.load(std::memory_order_relaxed);
  if (v < 0) {
    v = read_env_enabled();
    g_enabled.store(v, std::memory_order_relaxed);
  }
  return v == 1;
}

void set_enabled(bool on) {
  g_enabled.store(on ? 1 : 0, std::memory_order_relaxed);
}

/// One thread's slice of a registry: chunked cell storage indexed by the
/// metric's dense id. Chunks are heap blocks that never move or shrink, so
/// cell addresses handed to the thread-local cache stay valid for the
/// registry's lifetime. All chunk growth happens under the registry mutex
/// (slow path); the owning thread's lock-free writes touch only cells it
/// already holds pointers to.
struct Registry::Shard {
  static constexpr std::size_t kCounterChunk = 64;
  static constexpr std::size_t kHistChunk = 8;

  explicit Shard(int tid_in) : tid(tid_in) {}

  int tid;  // obs::current_thread_id() of the owning thread
  std::vector<std::unique_ptr<std::array<std::atomic<std::uint64_t>,
                                         kCounterChunk>>>
      counter_chunks;
  std::vector<std::unique_ptr<std::array<HistCell, kHistChunk>>> hist_chunks;

  std::atomic<std::uint64_t>* counter_cell(std::uint32_t id) {
    const std::size_t chunk = id / kCounterChunk;
    while (counter_chunks.size() <= chunk) {
      counter_chunks.push_back(
          std::make_unique<
              std::array<std::atomic<std::uint64_t>, kCounterChunk>>());
    }
    return &(*counter_chunks[chunk])[id % kCounterChunk];
  }

  HistCell* hist_cell(std::uint32_t id) {
    const std::size_t chunk = id / kHistChunk;
    while (hist_chunks.size() <= chunk) {
      hist_chunks.push_back(
          std::make_unique<std::array<HistCell, kHistChunk>>());
    }
    return &(*hist_chunks[chunk])[id % kHistChunk];
  }

  std::uint64_t counter_value(std::uint32_t id) const {
    const std::size_t chunk = id / kCounterChunk;
    if (chunk >= counter_chunks.size()) return 0;
    return (*counter_chunks[chunk])[id % kCounterChunk].load(
        std::memory_order_relaxed);
  }

  const HistCell* hist_cell_or_null(std::uint32_t id) const {
    const std::size_t chunk = id / kHistChunk;
    if (chunk >= hist_chunks.size()) return nullptr;
    return &(*hist_chunks[chunk])[id % kHistChunk];
  }

  void reset() {
    for (auto& chunk : counter_chunks) {
      for (auto& cell : *chunk) cell.store(0, std::memory_order_relaxed);
    }
    for (auto& chunk : hist_chunks) {
      for (HistCell& cell : *chunk) {
        for (auto& b : cell.buckets) b.store(0, std::memory_order_relaxed);
        cell.count.store(0, std::memory_order_relaxed);
        cell.sum.store(0, std::memory_order_relaxed);
      }
    }
  }
};

void Counter::add(std::uint64_t n) {
  TlsCache& cache = tls_cache();
  if (cache.uid == owner_->uid_ && id_ < cache.counters.size()) {
    std::atomic<std::uint64_t>* cell = cache.counters[id_];
    if (cell != nullptr) {
      cell->fetch_add(n, std::memory_order_relaxed);
      return;
    }
  }
  owner_->counter_add_slow(id_, n);
}

std::uint64_t Counter::value() const { return owner_->counter_value(id_); }

void Counter::reset() { owner_->counter_reset(id_); }

void Histogram::observe(std::int64_t value_ns) {
  const int bucket = histogram_bucket_index(value_ns);
  TlsCache& cache = tls_cache();
  if (cache.uid == owner_->uid_ && id_ < cache.hists.size()) {
    HistCell* cell = cache.hists[id_];
    if (cell != nullptr) {
      cell->buckets[bucket].fetch_add(1, std::memory_order_relaxed);
      cell->count.fetch_add(1, std::memory_order_relaxed);
      cell->sum.fetch_add(value_ns, std::memory_order_relaxed);
      return;
    }
  }
  owner_->hist_observe_slow(id_, bucket, value_ns);
}

std::uint64_t Histogram::count() const { return owner_->hist_count(id_); }

std::int64_t Histogram::sum() const { return owner_->hist_sum(id_); }

std::uint64_t Histogram::bucket(int i) const {
  return owner_->hist_bucket(id_, i);
}

void Histogram::reset() { owner_->hist_reset(id_); }

Registry::Registry() : uid_(next_registry_uid()) {}

Registry::~Registry() = default;

Registry& Registry::global() {
  static Registry* registry = new Registry();  // never destroyed
  return *registry;
}

Counter& Registry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = counters_[name];
  if (!slot) slot.reset(new Counter(this, next_counter_id_++));
  return *slot;
}

Gauge& Registry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& Registry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = histograms_[name];
  if (!slot) slot.reset(new Histogram(this, next_hist_id_++));
  return *slot;
}

Registry::Shard* Registry::shard_for_current_thread_locked() {
  const int tid = current_thread_id();
  // Linear scan: shards_ has one entry per thread that ever wrote here,
  // and this only runs on the cache-miss slow path.
  for (auto& shard : shards_) {
    if (shard->tid == tid) return shard.get();
  }
  shards_.push_back(std::make_unique<Shard>(tid));
  return shards_.back().get();
}

void Registry::counter_add_slow(std::uint32_t id, std::uint64_t n) {
  std::lock_guard<std::mutex> lock(mutex_);
  Shard* shard = shard_for_current_thread_locked();
  std::atomic<std::uint64_t>* cell = shard->counter_cell(id);
  TlsCache& cache = tls_cache();
  if (cache.uid != uid_) {
    cache.uid = uid_;
    cache.counters.clear();
    cache.hists.clear();
  }
  if (cache.counters.size() <= id) cache.counters.resize(id + 1, nullptr);
  cache.counters[id] = cell;
  cell->fetch_add(n, std::memory_order_relaxed);
}

void Registry::hist_observe_slow(std::uint32_t id, int bucket,
                                 std::int64_t value_ns) {
  std::lock_guard<std::mutex> lock(mutex_);
  Shard* shard = shard_for_current_thread_locked();
  HistCell* cell = shard->hist_cell(id);
  TlsCache& cache = tls_cache();
  if (cache.uid != uid_) {
    cache.uid = uid_;
    cache.counters.clear();
    cache.hists.clear();
  }
  if (cache.hists.size() <= id) cache.hists.resize(id + 1, nullptr);
  cache.hists[id] = cell;
  cell->buckets[bucket].fetch_add(1, std::memory_order_relaxed);
  cell->count.fetch_add(1, std::memory_order_relaxed);
  cell->sum.fetch_add(value_ns, std::memory_order_relaxed);
}

std::uint64_t Registry::counter_value_locked(std::uint32_t id) const {
  std::uint64_t total = 0;
  for (const auto& shard : shards_) total += shard->counter_value(id);
  return total;
}

std::uint64_t Registry::hist_count_locked(std::uint32_t id) const {
  std::uint64_t total = 0;
  for (const auto& shard : shards_) {
    if (const HistCell* cell = shard->hist_cell_or_null(id)) {
      total += cell->count.load(std::memory_order_relaxed);
    }
  }
  return total;
}

std::int64_t Registry::hist_sum_locked(std::uint32_t id) const {
  std::int64_t total = 0;
  for (const auto& shard : shards_) {
    if (const HistCell* cell = shard->hist_cell_or_null(id)) {
      total += cell->sum.load(std::memory_order_relaxed);
    }
  }
  return total;
}

std::uint64_t Registry::hist_bucket_locked(std::uint32_t id,
                                           int bucket) const {
  std::uint64_t total = 0;
  for (const auto& shard : shards_) {
    if (const HistCell* cell = shard->hist_cell_or_null(id)) {
      total += cell->buckets[bucket].load(std::memory_order_relaxed);
    }
  }
  return total;
}

std::uint64_t Registry::counter_value(std::uint32_t id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return counter_value_locked(id);
}

void Registry::counter_reset(std::uint32_t id) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& shard : shards_) {
    const std::size_t chunk = id / Shard::kCounterChunk;
    if (chunk >= shard->counter_chunks.size()) continue;
    (*shard->counter_chunks[chunk])[id % Shard::kCounterChunk].store(
        0, std::memory_order_relaxed);
  }
}

std::uint64_t Registry::hist_count(std::uint32_t id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return hist_count_locked(id);
}

std::int64_t Registry::hist_sum(std::uint32_t id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return hist_sum_locked(id);
}

std::uint64_t Registry::hist_bucket(std::uint32_t id, int bucket) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return hist_bucket_locked(id, bucket);
}

void Registry::hist_reset(std::uint32_t id) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& shard : shards_) {
    const std::size_t chunk = id / Shard::kHistChunk;
    if (chunk >= shard->hist_chunks.size()) continue;
    HistCell& cell = (*shard->hist_chunks[chunk])[id % Shard::kHistChunk];
    for (auto& b : cell.buckets) b.store(0, std::memory_order_relaxed);
    cell.count.store(0, std::memory_order_relaxed);
    cell.sum.store(0, std::memory_order_relaxed);
  }
}

void Registry::reset_locked() {
  for (auto& shard : shards_) shard->reset();
  for (auto& [name, g] : gauges_) g->reset();
}

void Registry::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  reset_locked();
}

void Registry::reset_all() {
  reset();
  clear_trace();
}

std::size_t Registry::shard_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return shards_.size();
}

RegistrySnapshot Registry::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  RegistrySnapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_) {
    snap.counters.emplace_back(name, counter_value_locked(c->id_));
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) {
    snap.gauges.emplace_back(name, g->value());
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    HistogramSnapshot hist;
    hist.name = name;
    hist.count = hist_count_locked(h->id_);
    hist.sum_ns = hist_sum_locked(h->id_);
    hist.buckets.reserve(Histogram::kBucketCount + 1);
    for (int i = 0; i <= Histogram::kBucketCount; ++i) {
      hist.buckets.push_back(hist_bucket_locked(h->id_, i));
    }
    snap.histograms.push_back(std::move(hist));
  }
  return snap;
}

std::string Registry::to_json(bool deterministic) const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string out = "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    if (deterministic && has_ns_suffix(name)) continue;
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + name + "\": ";
    append_uint(&out, counter_value_locked(c->id_));
  }
  out += first ? "}" : "\n  }";
  if (deterministic) {
    out += "\n}\n";
    return out;
  }

  out += ",\n  \"gauges\": {";
  first = true;
  for (const auto& [name, g] : gauges_) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + name + "\": ";
    append_double(&out, g->value());
  }
  out += first ? "}" : "\n  }";

  out += ",\n  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms_) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + name + "\": {\"count\": ";
    append_uint(&out, hist_count_locked(h->id_));
    out += ", \"sum_ns\": ";
    append_int(&out, hist_sum_locked(h->id_));
    out += ", \"first_bucket_log2\": ";
    append_int(&out, Histogram::kFirstBucketLog2);
    out += ", \"buckets\": [";
    for (int i = 0; i <= Histogram::kBucketCount; ++i) {
      if (i > 0) out += ", ";
      append_uint(&out, hist_bucket_locked(h->id_, i));
    }
    out += "]}";
  }
  out += first ? "}" : "\n  }";
  out += "\n}\n";
  return out;
}

double histogram_quantile_ns(const Histogram& hist, double q) {
  const std::uint64_t count = hist.count();
  if (count == 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Rank of the quantile observation, 1-based, rounded up (the classic
  // "smallest bound covering at least q of the mass").
  const std::uint64_t rank = static_cast<std::uint64_t>(
      q * static_cast<double>(count) + 0.9999999999);
  std::uint64_t cumulative = 0;
  for (int i = 0; i < Histogram::kBucketCount; ++i) {
    cumulative += hist.bucket(i);
    if (cumulative >= rank && cumulative > 0) {
      return static_cast<double>(1ull << (Histogram::kFirstBucketLog2 + i));
    }
  }
  // Overflow bucket: no finite bound; report one doubling past the last.
  return static_cast<double>(
      1ull << (Histogram::kFirstBucketLog2 + Histogram::kBucketCount));
}

std::string session_metric(const std::string& label,
                           const std::string& metric) {
  return "session." + label + "." + metric;
}

}  // namespace pbpair::obs
