#include "obs/metrics.h"

#include <bit>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "obs/trace.h"

namespace pbpair::obs {
namespace {

// -1 = not yet initialized from the environment.
std::atomic<int> g_enabled{-1};

int read_env_enabled() {
  const char* env = std::getenv("PBPAIR_TRACE");
  return (env != nullptr && env[0] != '\0' && std::strcmp(env, "0") != 0) ? 1
                                                                          : 0;
}

/// Appends `value` as a JSON number. Counters are exact (uint64); doubles
/// use %.17g so round-tripping is lossless.
void append_uint(std::string* out, std::uint64_t value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%llu",
                static_cast<unsigned long long>(value));
  *out += buf;
}

void append_int(std::string* out, std::int64_t value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(value));
  *out += buf;
}

void append_double(std::string* out, double value) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  *out += buf;
}

bool has_ns_suffix(const std::string& name) {
  return name.size() >= 3 && name.compare(name.size() - 3, 3, "_ns") == 0;
}

}  // namespace

bool enabled() {
  int v = g_enabled.load(std::memory_order_relaxed);
  if (v < 0) {
    v = read_env_enabled();
    g_enabled.store(v, std::memory_order_relaxed);
  }
  return v == 1;
}

void set_enabled(bool on) {
  g_enabled.store(on ? 1 : 0, std::memory_order_relaxed);
}

void Histogram::observe(std::int64_t value_ns) {
  // Bucket i holds values < 2^(kFirstBucketLog2 + i), so the bucket index
  // is just the value's bit width — one CLZ instead of a 28-way scan,
  // cheap enough to time every packet on the wire path.
  int bucket = 0;
  if (value_ns >= (std::int64_t{1} << kFirstBucketLog2)) {
    bucket = std::bit_width(static_cast<std::uint64_t>(value_ns)) -
             kFirstBucketLog2;
    if (bucket > kBucketCount) bucket = kBucketCount;  // overflow slot
  }
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value_ns, std::memory_order_relaxed);
}

void Histogram::reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
}

Registry& Registry::global() {
  static Registry* registry = new Registry();  // never destroyed
  return *registry;
}

Counter& Registry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& Registry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& Registry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return *slot;
}

void Registry::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

void Registry::reset_all() {
  reset();
  clear_trace();
}

RegistrySnapshot Registry::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  RegistrySnapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_) {
    snap.counters.emplace_back(name, c->value());
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) {
    snap.gauges.emplace_back(name, g->value());
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    HistogramSnapshot hist;
    hist.name = name;
    hist.count = h->count();
    hist.sum_ns = h->sum();
    hist.buckets.reserve(Histogram::kBucketCount + 1);
    for (int i = 0; i <= Histogram::kBucketCount; ++i) {
      hist.buckets.push_back(h->bucket(i));
    }
    snap.histograms.push_back(std::move(hist));
  }
  return snap;
}

std::string Registry::to_json(bool deterministic) const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string out = "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    if (deterministic && has_ns_suffix(name)) continue;
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + name + "\": ";
    append_uint(&out, c->value());
  }
  out += first ? "}" : "\n  }";
  if (deterministic) {
    out += "\n}\n";
    return out;
  }

  out += ",\n  \"gauges\": {";
  first = true;
  for (const auto& [name, g] : gauges_) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + name + "\": ";
    append_double(&out, g->value());
  }
  out += first ? "}" : "\n  }";

  out += ",\n  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms_) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + name + "\": {\"count\": ";
    append_uint(&out, h->count());
    out += ", \"sum_ns\": ";
    append_int(&out, h->sum());
    out += ", \"first_bucket_log2\": ";
    append_int(&out, Histogram::kFirstBucketLog2);
    out += ", \"buckets\": [";
    for (int i = 0; i <= Histogram::kBucketCount; ++i) {
      if (i > 0) out += ", ";
      append_uint(&out, h->bucket(i));
    }
    out += "]}";
  }
  out += first ? "}" : "\n  }";
  out += "\n}\n";
  return out;
}

std::string session_metric(const std::string& label,
                           const std::string& metric) {
  return "session." + label + "." + metric;
}

}  // namespace pbpair::obs
