#include "obs/prometheus.h"

#include <cstdio>
#include <cstdlib>
#include <map>
#include <utility>

namespace pbpair::obs {
namespace {

// Prometheus metric names allow [a-zA-Z0-9_:]; everything else (the
// registry's dots, mostly) becomes '_'.
std::string mangle(const std::string& name) {
  std::string out;
  out.reserve(name.size());
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += ok ? c : '_';
  }
  return out;
}

// Label VALUES escape backslash, quote, and newline (text format 0.0.4).
std::string escape_label(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '"') {
      out += "\\\"";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

std::string unescape_label(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (std::size_t i = 0; i < value.size(); ++i) {
    if (value[i] == '\\' && i + 1 < value.size()) {
      ++i;
      out += value[i] == 'n' ? '\n' : value[i];
    } else {
      out += value[i];
    }
  }
  return out;
}

/// Splits "session.<label>.<metric>"; false for any other shape.
bool split_session(const std::string& name, std::string* label,
                   std::string* metric) {
  constexpr char kPrefix[] = "session.";
  constexpr std::size_t kPrefixLen = sizeof(kPrefix) - 1;
  if (name.compare(0, kPrefixLen, kPrefix) != 0) return false;
  const std::size_t dot = name.find('.', kPrefixLen);
  if (dot == std::string::npos || dot == kPrefixLen ||
      dot + 1 >= name.size()) {
    return false;
  }
  *label = name.substr(kPrefixLen, dot - kPrefixLen);
  *metric = name.substr(dot + 1);
  return true;
}

struct FamilyData {
  const char* type = "counter";
  std::vector<std::string> lines;  // appended in sorted-source order
};

std::string format_uint(std::uint64_t value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%llu",
                static_cast<unsigned long long>(value));
  return buf;
}

std::string format_double(double value) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return buf;
}

}  // namespace

std::string render_prometheus(const Registry& registry) {
  const RegistrySnapshot snap = registry.snapshot();
  // Families sorted by name; sample lines within a family inherit the
  // snapshot's sorted-by-source-name order, which for session metrics is
  // sorted-by-label (the label precedes the metric in the source name).
  std::map<std::string, FamilyData> families;

  for (const auto& [name, value] : snap.counters) {
    std::string label, metric;
    std::string family, line;
    if (split_session(name, &label, &metric)) {
      family = "pbpair_session_" + mangle(metric) + "_total";
      line = family + "{session=\"" + escape_label(label) + "\"} ";
    } else {
      family = "pbpair_" + mangle(name) + "_total";
      line = family + " ";
    }
    FamilyData& data = families[family];
    data.type = "counter";
    data.lines.push_back(line + format_uint(value));
  }

  for (const auto& [name, value] : snap.gauges) {
    std::string label, metric;
    std::string family, line;
    if (split_session(name, &label, &metric)) {
      family = "pbpair_session_" + mangle(metric);
      line = family + "{session=\"" + escape_label(label) + "\"} ";
    } else {
      family = "pbpair_" + mangle(name);
      line = family + " ";
    }
    FamilyData& data = families[family];
    data.type = "gauge";
    data.lines.push_back(line + format_double(value));
  }

  for (const HistogramSnapshot& hist : snap.histograms) {
    std::string label, metric;
    std::string family, labels;
    if (split_session(hist.name, &label, &metric)) {
      family = "pbpair_session_" + mangle(metric);
      labels = "session=\"" + escape_label(label) + "\",";
    } else {
      family = "pbpair_" + mangle(hist.name);
    }
    FamilyData& data = families[family];
    data.type = "histogram";
    std::uint64_t cumulative = 0;
    for (int i = 0; i <= Histogram::kBucketCount; ++i) {
      cumulative += hist.buckets[static_cast<std::size_t>(i)];
      std::string le;
      if (i < Histogram::kBucketCount) {
        le = format_uint(std::uint64_t{1}
                         << (Histogram::kFirstBucketLog2 + i));
      } else {
        le = "+Inf";
      }
      data.lines.push_back(family + "_bucket{" + labels + "le=\"" + le +
                           "\"} " + format_uint(cumulative));
    }
    char sum[32];
    std::snprintf(sum, sizeof(sum), "%lld",
                  static_cast<long long>(hist.sum_ns));
    const std::string label_block =
        labels.empty() ? "" : "{" + labels.substr(0, labels.size() - 1) + "}";
    data.lines.push_back(family + "_sum" + label_block + " " + sum);
    data.lines.push_back(family + "_count" + label_block + " " +
                         format_uint(hist.count));
  }

  std::string out;
  for (const auto& [family, data] : families) {
    out += "# TYPE " + family + " " + data.type + "\n";
    for (const std::string& line : data.lines) {
      out += line;
      out += '\n';
    }
  }
  return out;
}

bool parse_prometheus_text(const std::string& text,
                           std::vector<PromSample>* out) {
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t end = text.find('\n', pos);
    if (end == std::string::npos) end = text.size();
    std::string line = text.substr(pos, end - pos);
    pos = end + 1;
    if (line.empty() || line[0] == '#') continue;

    const std::size_t space = line.rfind(' ');
    if (space == std::string::npos || space + 1 >= line.size()) return false;
    char* parse_end = nullptr;
    const std::string value_text = line.substr(space + 1);
    double value = std::strtod(value_text.c_str(), &parse_end);
    if (parse_end == value_text.c_str()) {
      if (value_text == "+Inf") {
        value = 1e308;
      } else {
        return false;
      }
    }

    PromSample sample;
    sample.value = value;
    std::string name = line.substr(0, space);
    const std::size_t brace = name.find('{');
    if (brace == std::string::npos) {
      sample.family = name;
      out->push_back(std::move(sample));
      continue;
    }
    if (name.back() != '}') return false;
    sample.family = name.substr(0, brace);
    const std::string labels = name.substr(brace + 1,
                                           name.size() - brace - 2);
    // Split k="v" pairs; keep everything except `session` on the family.
    std::string kept;
    std::size_t lpos = 0;
    while (lpos < labels.size()) {
      const std::size_t eq = labels.find("=\"", lpos);
      if (eq == std::string::npos) return false;
      const std::string key = labels.substr(lpos, eq - lpos);
      std::size_t vend = eq + 2;
      while (vend < labels.size() &&
             (labels[vend] != '"' || labels[vend - 1] == '\\')) {
        ++vend;
      }
      if (vend >= labels.size()) return false;
      const std::string value_str =
          unescape_label(labels.substr(eq + 2, vend - eq - 2));
      if (key == "session") {
        sample.session = value_str;
      } else {
        kept += (kept.empty() ? "" : ",") + key + "=\"" +
                labels.substr(eq + 2, vend - eq - 2) + "\"";
      }
      lpos = vend + 1;
      if (lpos < labels.size() && labels[lpos] == ',') ++lpos;
    }
    if (!kept.empty()) sample.family += "{" + kept + "}";
    out->push_back(std::move(sample));
  }
  return true;
}

}  // namespace pbpair::obs
