#include "obs/http_exporter.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <utility>

#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace pbpair::obs {
namespace {

constexpr std::size_t kRequestCap = 4096;

const char* status_text(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    default: return "Error";
  }
}

bool set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

/// One client connection's state machine: accumulate the request until the
/// header terminator (or cap, or EOF), then drain the serialized response.
struct Connection {
  enum class State { kReading, kWriting };
  State state = State::kReading;
  std::string in;
  std::string out;
  std::size_t out_off = 0;
  std::int64_t start_ns = 0;     // accept time, for the scrape histogram
  std::int64_t deadline_ns = 0;  // slow-client cutoff
};

/// Builds the full wire response (status line + headers + body) for a raw
/// request buffer. Parsing failures and non-GET methods are answered, not
/// dropped, so a scraper always sees a status code.
std::string build_response(const std::string& request,
                           const HttpHandler& handler) {
  HttpResponse response;
  const std::size_t first_space = request.find(' ');
  const std::size_t second_space = first_space == std::string::npos
                                       ? std::string::npos
                                       : request.find(' ', first_space + 1);
  if (second_space == std::string::npos) {
    PB_LOG_DEBUG("http exporter: malformed request line (%zu bytes)",
                 request.size());
    response = HttpResponse{400, "text/plain", "bad request\n"};
  } else if (request.compare(0, first_space, "GET") != 0) {
    response = HttpResponse{405, "text/plain", "GET only\n"};
  } else {
    response = handler(
        request.substr(first_space + 1, second_space - first_space - 1));
  }
  char header[256];
  std::snprintf(header, sizeof(header),
                "HTTP/1.0 %d %s\r\nContent-Type: %s\r\n"
                "Content-Length: %zu\r\nConnection: close\r\n\r\n",
                response.status, status_text(response.status),
                response.content_type.c_str(), response.body.size());
  return header + response.body;
}

void write_all(int fd, const std::string& data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent, 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) return;
    sent += static_cast<std::size_t>(n);
  }
}

}  // namespace

HttpExporter::~HttpExporter() { stop(); }

bool HttpExporter::start(int port, HttpHandler handler) {
  return start(port, std::move(handler), HttpExporterOptions{});
}

bool HttpExporter::start(int port, HttpHandler handler,
                         const HttpExporterOptions& options) {
  if (running_.load(std::memory_order_relaxed)) return false;
  handler_ = std::move(handler);
  options_ = options;

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return false;
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
          0 ||
      ::listen(listen_fd_, 64) < 0 || !set_nonblocking(listen_fd_)) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  socklen_t addr_len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &addr_len);
  port_ = ntohs(addr.sin_port);

  stop_requested_.store(false, std::memory_order_relaxed);
  running_.store(true, std::memory_order_relaxed);
  thread_ = std::thread([this] { serve_loop(); });
  return true;
}

void HttpExporter::stop() {
  if (!running_.load(std::memory_order_relaxed)) return;
  stop_requested_.store(true, std::memory_order_relaxed);
  if (thread_.joinable()) thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  running_.store(false, std::memory_order_relaxed);
}

void HttpExporter::serve_loop() {
  set_thread_name("metrics-exporter");
  const int epfd = ::epoll_create1(0);
  if (epfd < 0) return;

  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = listen_fd_;
  ::epoll_ctl(epfd, EPOLL_CTL_ADD, listen_fd_, &ev);

  std::map<int, Connection> conns;
  const std::int64_t timeout_ns =
      static_cast<std::int64_t>(options_.slow_client_timeout_ms) * 1'000'000;

  const auto track_active = [&conns] {
    if (enabled()) {
      gauge("obs.http.active_connections")
          .set(static_cast<double>(conns.size()));
    }
  };
  const auto close_conn = [&](int fd) {
    ::epoll_ctl(epfd, EPOLL_CTL_DEL, fd, nullptr);
    ::close(fd);
    conns.erase(fd);
    track_active();
  };

  epoll_event events[64];
  while (!stop_requested_.load(std::memory_order_relaxed)) {
    // 100 ms cap so the stop flag is honored even when idle.
    const int n_ready = ::epoll_wait(epfd, events, 64, /*timeout_ms=*/100);
    if (n_ready < 0 && errno != EINTR) break;
    const std::int64_t now = trace_now_ns();

    for (int i = 0; i < (n_ready > 0 ? n_ready : 0); ++i) {
      const int fd = events[i].data.fd;
      if (fd == listen_fd_) {
        // Drain the accept queue (edge-independent: level-triggered, but
        // accepting everything now keeps latency flat under bursts).
        for (;;) {
          const int client = ::accept(listen_fd_, nullptr, nullptr);
          if (client < 0) break;  // EAGAIN or transient error: done
          if (static_cast<int>(conns.size()) >= options_.max_connections ||
              !set_nonblocking(client)) {
            ::close(client);
            continue;
          }
          Connection conn;
          conn.start_ns = now;
          conn.deadline_ns = now + timeout_ns;
          conns.emplace(client, std::move(conn));
          epoll_event cev{};
          cev.events = EPOLLIN;
          cev.data.fd = client;
          ::epoll_ctl(epfd, EPOLL_CTL_ADD, client, &cev);
          track_active();
        }
        continue;
      }

      auto it = conns.find(fd);
      if (it == conns.end()) continue;
      Connection& conn = it->second;

      if (events[i].events & (EPOLLERR | EPOLLHUP)) {
        // EPOLLHUP with the request already answered in-kernel is fine;
        // anything else means the peer is gone.
        if (conn.state != Connection::State::kWriting) {
          close_conn(fd);
          continue;
        }
      }

      if (conn.state == Connection::State::kReading) {
        char buf[1024];
        bool request_done = false;
        bool peer_gone = false;
        while (conn.in.size() < kRequestCap) {
          const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
          if (n < 0) {
            if (errno == EINTR) continue;
            if (errno != EAGAIN && errno != EWOULDBLOCK) peer_gone = true;
            break;
          }
          if (n == 0) {  // EOF: serve what arrived (may be a partial line)
            request_done = true;
            break;
          }
          conn.in.append(buf, static_cast<std::size_t>(n));
          if (conn.in.find("\r\n\r\n") != std::string::npos) {
            request_done = true;
            break;
          }
        }
        if (peer_gone) {
          close_conn(fd);
          continue;
        }
        if (request_done || conn.in.size() >= kRequestCap) {
          conn.out = build_response(conn.in, handler_);
          conn.state = Connection::State::kWriting;
          epoll_event cev{};
          cev.events = EPOLLOUT;
          cev.data.fd = fd;
          ::epoll_ctl(epfd, EPOLL_CTL_MOD, fd, &cev);
        }
      }

      if (conn.state == Connection::State::kWriting) {
        bool done = false;
        bool failed = false;
        while (conn.out_off < conn.out.size()) {
          const ssize_t n = ::send(fd, conn.out.data() + conn.out_off,
                                   conn.out.size() - conn.out_off, 0);
          if (n < 0) {
            if (errno == EINTR) continue;
            if (errno != EAGAIN && errno != EWOULDBLOCK) failed = true;
            break;
          }
          conn.out_off += static_cast<std::size_t>(n);
        }
        done = conn.out_off >= conn.out.size();
        if (done && enabled()) {
          counter("obs.http.requests").add(1);
          counter("obs.http.bytes").add(conn.out.size());
          histogram("obs.http.scrape_ns").observe(trace_now_ns() -
                                                  conn.start_ns);
        }
        if (done || failed) close_conn(fd);
      }
    }

    // Slow-client sweep: a trickler (or a connect that never sends) is cut
    // at its deadline so it cannot hold a connection slot indefinitely.
    for (auto it = conns.begin(); it != conns.end();) {
      if (now >= it->second.deadline_ns) {
        const int fd = it->first;
        ++it;
        if (enabled()) counter("obs.http.timeouts").add(1);
        close_conn(fd);
      } else {
        ++it;
      }
    }
  }

  for (auto& [fd, conn] : conns) ::close(fd);
  conns.clear();
  ::close(epfd);
}

bool http_get(const std::string& host, int port, const std::string& path,
              std::string* body, int* status) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return false;

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1 ||
      ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd);
    return false;
  }

  const std::string request = "GET " + path + " HTTP/1.0\r\nHost: " + host +
                              "\r\nConnection: close\r\n\r\n";
  write_all(fd, request);

  std::string response;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;
    response.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);

  // "HTTP/1.0 200 OK\r\n...headers...\r\n\r\nbody"
  if (response.compare(0, 5, "HTTP/") != 0) return false;
  const std::size_t status_pos = response.find(' ');
  if (status_pos == std::string::npos) return false;
  if (status != nullptr) {
    *status = std::atoi(response.c_str() + status_pos + 1);
  }
  const std::size_t body_pos = response.find("\r\n\r\n");
  if (body_pos == std::string::npos) return false;
  *body = response.substr(body_pos + 4);
  return true;
}

}  // namespace pbpair::obs
