#include "obs/http_exporter.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <utility>

#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace pbpair::obs {
namespace {

const char* status_text(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    default: return "Error";
  }
}

// Reads until the end of the request headers, `cap` bytes, or a short
// deadline. A scraper's GET usually arrives in one segment, but nothing
// guarantees that: the header may be split across reads, a hostile or
// wedged client may trickle bytes or send nothing at all. The poll()
// deadline bounds how long one connection can hold the single-threaded
// exporter; EINTR on recv is retried, not treated as disconnect.
std::string read_request(int fd) {
  constexpr std::size_t cap = 4096;
  constexpr int deadline_ms = 2000;
  std::string request;
  char buf[1024];
  int remaining_ms = deadline_ms;
  while (request.size() < cap &&
         request.find("\r\n\r\n") == std::string::npos && remaining_ms > 0) {
    pollfd pfd{};
    pfd.fd = fd;
    pfd.events = POLLIN;
    const int ready = ::poll(&pfd, 1, remaining_ms);
    if (ready < 0 && errno == EINTR) continue;
    if (ready <= 0) break;  // deadline or poll failure: serve what we have
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;
    request.append(buf, static_cast<std::size_t>(n));
    // Coarse budget: each successful read costs a slice so a byte-at-a-
    // time trickler cannot pin the connection past a few seconds.
    remaining_ms -= 100;
  }
  return request;
}

void write_all(int fd, const std::string& data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent, 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) return;
    sent += static_cast<std::size_t>(n);
  }
}

}  // namespace

HttpExporter::~HttpExporter() { stop(); }

bool HttpExporter::start(int port, HttpHandler handler) {
  if (running_.load(std::memory_order_relaxed)) return false;
  handler_ = std::move(handler);

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return false;
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
          0 ||
      ::listen(listen_fd_, 8) < 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  socklen_t addr_len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &addr_len);
  port_ = ntohs(addr.sin_port);

  stop_requested_.store(false, std::memory_order_relaxed);
  running_.store(true, std::memory_order_relaxed);
  thread_ = std::thread([this] { serve_loop(); });
  return true;
}

void HttpExporter::stop() {
  if (!running_.load(std::memory_order_relaxed)) return;
  stop_requested_.store(true, std::memory_order_relaxed);
  if (thread_.joinable()) thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  running_.store(false, std::memory_order_relaxed);
}

void HttpExporter::serve_loop() {
  set_thread_name("metrics-exporter");
  while (!stop_requested_.load(std::memory_order_relaxed)) {
    pollfd pfd{};
    pfd.fd = listen_fd_;
    pfd.events = POLLIN;
    const int ready = ::poll(&pfd, 1, /*timeout_ms=*/100);
    if (ready <= 0) continue;  // timeout or EINTR: re-check the stop flag

    const int client = ::accept(listen_fd_, nullptr, nullptr);
    if (client < 0) continue;
    const std::string request = read_request(client);

    HttpResponse response;
    std::string method, path;
    const std::size_t first_space = request.find(' ');
    const std::size_t second_space =
        first_space == std::string::npos
            ? std::string::npos
            : request.find(' ', first_space + 1);
    if (second_space == std::string::npos) {
      PB_LOG_DEBUG("http exporter: malformed request line (%zu bytes)",
                   request.size());
      response = HttpResponse{400, "text/plain", "bad request\n"};
    } else {
      method = request.substr(0, first_space);
      path = request.substr(first_space + 1, second_space - first_space - 1);
      if (method != "GET") {
        response = HttpResponse{405, "text/plain", "GET only\n"};
      } else {
        response = handler_(path);
      }
    }
    if (enabled()) counter("obs.http_requests").add(1);

    char header[256];
    std::snprintf(header, sizeof(header),
                  "HTTP/1.0 %d %s\r\nContent-Type: %s\r\n"
                  "Content-Length: %zu\r\nConnection: close\r\n\r\n",
                  response.status, status_text(response.status),
                  response.content_type.c_str(), response.body.size());
    write_all(client, header + response.body);
    ::close(client);
  }
}

bool http_get(const std::string& host, int port, const std::string& path,
              std::string* body, int* status) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return false;

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1 ||
      ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd);
    return false;
  }

  const std::string request = "GET " + path + " HTTP/1.0\r\nHost: " + host +
                              "\r\nConnection: close\r\n\r\n";
  write_all(fd, request);

  std::string response;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;
    response.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);

  // "HTTP/1.0 200 OK\r\n...headers...\r\n\r\nbody"
  if (response.compare(0, 5, "HTTP/") != 0) return false;
  const std::size_t status_pos = response.find(' ');
  if (status_pos == std::string::npos) return false;
  if (status != nullptr) {
    *status = std::atoi(response.c_str() + status_pos + 1);
  }
  const std::size_t body_pos = response.find("\r\n\r\n");
  if (body_pos == std::string::npos) return false;
  *body = response.substr(body_pos + 4);
  return true;
}

}  // namespace pbpair::obs
