// Observability metrics: a process-wide registry of counters, gauges, and
// histograms, sharded per thread on the write path.
//
// Design rules (DESIGN.md §8, sharding in §14):
//  - Observability READS, it never perturbs. Nothing in this module feeds
//    back into codec, channel, or energy state, so enabling it cannot
//    change a single output byte (tests/test_obs.cpp asserts this).
//  - Everything is a runtime no-op unless enabled: callers guard hot-path
//    updates with `if (obs::enabled())`, which is one relaxed atomic load.
//    Enable with the PBPAIR_TRACE environment variable or set_enabled()
//    (the CLI's --trace flag).
//  - Writes are sharded: Counter/Histogram are small handles (registry +
//    dense id) whose add()/observe() land on a per-thread shard cell via a
//    thread-local pointer cache — one relaxed fetch_add, no lock, no
//    cacheline shared with any other thread. Shards are merged (summed)
//    only at read time (value(), snapshot(), to_json), so N threads
//    bumping the same counter never contend. Merging is an
//    order-independent sum, which keeps every deterministic output —
//    golden Prometheus text included — byte-identical at any thread
//    count. Gauges are last-writer-wins and stay a single central atomic.
//  - Output is deterministic: metrics are emitted sorted by name, and
//    histogram bucket layouts are fixed at compile time. Timing-valued
//    metrics (all histograms, gauges, and any metric named `*_ns`) can be
//    stripped so that two runs of the same seeded workload — at any thread
//    count, on any backend — produce byte-identical JSON.
//  - Registration takes a mutex but returns stable references (metrics are
//    never destroyed until process exit), so callers may cache `Counter*`
//    across calls — the cached handle still routes each add() to the
//    calling thread's own shard.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace pbpair::obs {

class Registry;

/// True when observability is on. First call consults the PBPAIR_TRACE
/// environment variable (unset, empty, or "0" = off); set_enabled()
/// overrides at any time.
bool enabled();
void set_enabled(bool on);

/// Monotonic event count. add() is lock-free on the calling thread's
/// shard; value() merges all shards (takes the registry mutex — read
/// paths only).
class Counter {
 public:
  void add(std::uint64_t n = 1);
  std::uint64_t value() const;
  void reset();

 private:
  friend class Registry;
  Counter(Registry* owner, std::uint32_t id) : owner_(owner), id_(id) {}

  Registry* owner_;
  std::uint32_t id_;
};

/// Last-written value (thread-safe but last-writer-wins: gauges are for
/// serial contexts and are stripped from deterministic output). Gauges
/// are not sharded — a per-shard "last write" cannot be merged.
class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Histogram over a FIXED power-of-two nanosecond bucket layout: bucket i
/// counts observations with value < 2^(kFirstBucketLog2 + i) ns (the last
/// bucket is the overflow). The layout never depends on the data, so the
/// emitted shape is deterministic. observe() is lock-free on the calling
/// thread's shard; count()/sum()/bucket() merge all shards.
class Histogram {
 public:
  static constexpr int kFirstBucketLog2 = 8;  // first bound: 256 ns
  static constexpr int kBucketCount = 28;     // last bound: ~34 s, then +inf

  void observe(std::int64_t value_ns);

  std::uint64_t count() const;
  std::int64_t sum() const;
  std::uint64_t bucket(int i) const;
  void reset();

 private:
  friend class Registry;
  Histogram(Registry* owner, std::uint32_t id) : owner_(owner), id_(id) {}

  Registry* owner_;
  std::uint32_t id_;
};

/// Point-in-time copy of one histogram (bucket layout is the fixed
/// compile-time one; `buckets` holds per-bin counts, overflow last).
struct HistogramSnapshot {
  std::string name;
  std::uint64_t count = 0;
  std::int64_t sum_ns = 0;
  std::vector<std::uint64_t> buckets;
};

/// Consistent copy of a registry's contents, sorted by name — what the
/// exporters (JSON, Prometheus) render from. Shards are merged under one
/// lock hold, so the snapshot is internally consistent.
struct RegistrySnapshot {
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<HistogramSnapshot> histograms;
};

/// Name -> metric map with per-thread write shards. Lookups take a mutex;
/// returned references are stable for the life of the registry, so hot
/// paths should look up once and cache the pointer.
class Registry {
 public:
  /// The process-wide registry every subsystem reports into.
  static Registry& global();

  Registry();
  ~Registry();
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  /// Zeroes every metric across every shard (registrations and cached
  /// pointers stay valid).
  void reset();

  /// reset() plus the process-wide trace buffer (obs/trace.h) — one call
  /// returns the whole observability layer to a blank slate. Test
  /// fixtures use this so metrics from one test cannot leak into the
  /// next's assertions.
  void reset_all();

  /// Copies every metric's current value, sorted by name, shards merged.
  RegistrySnapshot snapshot() const;

  /// JSON object with "counters" / "gauges" / "histograms" sections, keys
  /// sorted by name. With `deterministic` set, only counters survive and
  /// counters named `*_ns` are dropped — what remains is a pure function
  /// of the workload, independent of wall clock, thread count, or SIMD
  /// backend.
  std::string to_json(bool deterministic = false) const;

  /// Number of per-thread shards materialized so far (threads that have
  /// bumped at least one counter/histogram of this registry). Test-only
  /// introspection.
  std::size_t shard_count() const;

 private:
  friend class Counter;
  friend class Histogram;

  struct Shard;

  // Slow paths: take the mutex, materialize the calling thread's shard
  // cell for the metric id, refresh the thread-local cache, then apply
  // the update. Subsequent updates from the same thread hit the cache.
  void counter_add_slow(std::uint32_t id, std::uint64_t n);
  void hist_observe_slow(std::uint32_t id, int bucket, std::int64_t value_ns);

  Shard* shard_for_current_thread_locked();

  // Merged reads / resets (id-indexed, lock already held).
  std::uint64_t counter_value_locked(std::uint32_t id) const;
  std::uint64_t hist_count_locked(std::uint32_t id) const;
  std::int64_t hist_sum_locked(std::uint32_t id) const;
  std::uint64_t hist_bucket_locked(std::uint32_t id, int bucket) const;
  void reset_locked();

  std::uint64_t counter_value(std::uint32_t id) const;
  void counter_reset(std::uint32_t id);
  std::uint64_t hist_count(std::uint32_t id) const;
  std::int64_t hist_sum(std::uint32_t id) const;
  std::uint64_t hist_bucket(std::uint32_t id, int bucket) const;
  void hist_reset(std::uint32_t id);

  const std::uint64_t uid_;  // process-unique; keys the thread-local cache
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
  std::uint32_t next_counter_id_ = 0;
  std::uint32_t next_hist_id_ = 0;
  std::vector<std::unique_ptr<Shard>> shards_;
};

/// Upper-bound estimate of the q-quantile (q in [0, 1]) of `hist` in
/// nanoseconds: walks the fixed log2 bucket layout until the cumulative
/// count covers q and returns that bucket's upper bound (the overflow
/// bucket reports twice the last finite bound). 0 when the histogram is
/// empty. Coarse by design — the layout doubles per bucket — but stable:
/// the same data always maps to the same bound, so benches can gate on it.
double histogram_quantile_ns(const Histogram& hist, double q);

/// Per-session metric name: "session.<label>.<metric>". Multi-session runs
/// (sim::SessionManager) register each stream's counters under this
/// namespace so the exported JSON can be broken down per session; labels
/// should be deterministic (e.g. "s007"), never derived from pointers or
/// scheduling order.
std::string session_metric(const std::string& label,
                           const std::string& metric);

/// Shorthands for Registry::global().
inline Counter& counter(const std::string& name) {
  return Registry::global().counter(name);
}
inline Gauge& gauge(const std::string& name) {
  return Registry::global().gauge(name);
}
inline Histogram& histogram(const std::string& name) {
  return Registry::global().histogram(name);
}

}  // namespace pbpair::obs
