// Observability metrics: a process-wide registry of counters, gauges, and
// histograms.
//
// Design rules (DESIGN.md §8):
//  - Observability READS, it never perturbs. Nothing in this module feeds
//    back into codec, channel, or energy state, so enabling it cannot
//    change a single output byte (tests/test_obs.cpp asserts this).
//  - Everything is a runtime no-op unless enabled: callers guard hot-path
//    updates with `if (obs::enabled())`, which is one relaxed atomic load.
//    Enable with the PBPAIR_TRACE environment variable or set_enabled()
//    (the CLI's --trace flag).
//  - Output is deterministic: metrics are emitted sorted by name, and
//    histogram bucket layouts are fixed at compile time. Timing-valued
//    metrics (all histograms, gauges, and any metric named `*_ns`) can be
//    stripped so that two runs of the same seeded workload — at any thread
//    count, on any backend — produce byte-identical JSON.
//  - Updates are thread-safe: counters/gauges/histograms use relaxed
//    atomics; registration takes a mutex but returns stable references
//    (metrics are never destroyed until process exit), so callers may
//    cache `Counter*` across calls.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace pbpair::obs {

/// True when observability is on. First call consults the PBPAIR_TRACE
/// environment variable (unset, empty, or "0" = off); set_enabled()
/// overrides at any time.
bool enabled();
void set_enabled(bool on);

/// Monotonic event count (thread-safe, relaxed).
class Counter {
 public:
  void add(std::uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-written value (thread-safe but last-writer-wins: gauges are for
/// serial contexts and are stripped from deterministic output).
class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Histogram over a FIXED power-of-two nanosecond bucket layout: bucket i
/// counts observations with value < 2^(kFirstBucketLog2 + i) ns (the last
/// bucket is the overflow). The layout never depends on the data, so the
/// emitted shape is deterministic.
class Histogram {
 public:
  static constexpr int kFirstBucketLog2 = 8;  // first bound: 256 ns
  static constexpr int kBucketCount = 28;     // last bound: ~34 s, then +inf

  void observe(std::int64_t value_ns);

  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  std::int64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  std::uint64_t bucket(int i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  void reset();

 private:
  std::atomic<std::uint64_t> buckets_[kBucketCount + 1] = {};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::int64_t> sum_{0};
};

/// Point-in-time copy of one histogram (bucket layout is the fixed
/// compile-time one; `buckets` holds per-bin counts, overflow last).
struct HistogramSnapshot {
  std::string name;
  std::uint64_t count = 0;
  std::int64_t sum_ns = 0;
  std::vector<std::uint64_t> buckets;
};

/// Consistent copy of a registry's contents, sorted by name — what the
/// exporters (JSON, Prometheus) render from.
struct RegistrySnapshot {
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<HistogramSnapshot> histograms;
};

/// Name -> metric map. Lookups take a mutex; returned references are
/// stable for the life of the process, so hot paths should look up once
/// and cache the pointer.
class Registry {
 public:
  /// The process-wide registry every subsystem reports into.
  static Registry& global();

  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  /// Zeroes every metric (registrations and cached pointers stay valid).
  void reset();

  /// reset() plus the process-wide trace buffer (obs/trace.h) — one call
  /// returns the whole observability layer to a blank slate. Test
  /// fixtures use this so metrics from one test cannot leak into the
  /// next's assertions.
  void reset_all();

  /// Copies every metric's current value, sorted by name.
  RegistrySnapshot snapshot() const;

  /// JSON object with "counters" / "gauges" / "histograms" sections, keys
  /// sorted by name. With `deterministic` set, only counters survive and
  /// counters named `*_ns` are dropped — what remains is a pure function
  /// of the workload, independent of wall clock, thread count, or SIMD
  /// backend.
  std::string to_json(bool deterministic = false) const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/// Per-session metric name: "session.<label>.<metric>". Multi-session runs
/// (sim::SessionManager) register each stream's counters under this
/// namespace so the exported JSON can be broken down per session; labels
/// should be deterministic (e.g. "s007"), never derived from pointers or
/// scheduling order.
std::string session_metric(const std::string& label,
                           const std::string& metric);

/// Shorthands for Registry::global().
inline Counter& counter(const std::string& name) {
  return Registry::global().counter(name);
}
inline Gauge& gauge(const std::string& name) {
  return Registry::global().gauge(name);
}
inline Histogram& histogram(const std::string& name) {
  return Registry::global().histogram(name);
}

}  // namespace pbpair::obs
