#include "obs/log.h"

#include <chrono>
#include <cstdarg>
#include <cstdio>
#include <cstring>
#include <mutex>

#include "common/json.h"
#include "obs/metrics.h"

namespace pbpair::obs {
namespace {

// Token bucket shape shared by every site: a short burst gets through
// untouched, a runaway loop degrades to kLogRefillPerSec records/s.
constexpr double kLogBurst = 8.0;
constexpr double kLogRefillPerSec = 2.0;

std::atomic<int> g_min_level{static_cast<int>(LogLevel::kWarn)};
std::atomic<bool> g_deterministic{false};
std::atomic<std::uint64_t> g_suppressed_total{0};
std::atomic<std::uint64_t> g_suppressing_sites{0};

// Guards the sink (file handle swaps and record writes) and the per-site
// bucket math. Logging is rare by construction, so one mutex is fine.
std::mutex g_mutex;
std::FILE* g_sink = nullptr;  // nullptr = stderr
bool g_sink_is_file = false;

std::int64_t steady_now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

double wall_now_s() {
  return std::chrono::duration<double>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

const char* basename_of(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash != nullptr ? slash + 1 : path;
}

// Exit summary: suppression must never be silent, even when nobody
// scrapes the registry. One stderr line, only when something was dropped.
void print_suppression_summary() {
  const std::uint64_t total = g_suppressed_total.load(std::memory_order_relaxed);
  if (total == 0) return;
  const std::uint64_t sites =
      g_suppressing_sites.load(std::memory_order_relaxed);
  std::fprintf(stderr,
               "pbpair: log rate limiter suppressed %llu record(s) across "
               "%llu site(s); see obs.log.suppressed.* counters\n",
               static_cast<unsigned long long>(total),
               static_cast<unsigned long long>(sites));
}

// Registered on the first suppression (not at static-init time) so quiet
// processes never pay for it and ordering vs other atexit hooks is moot.
std::once_flag g_summary_once;

}  // namespace

const char* log_level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "debug";
    case LogLevel::kInfo: return "info";
    case LogLevel::kWarn: return "warn";
    case LogLevel::kError: return "error";
    case LogLevel::kOff: return "off";
  }
  return "?";
}

void set_log_min_level(LogLevel level) {
  g_min_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel log_min_level() {
  return static_cast<LogLevel>(g_min_level.load(std::memory_order_relaxed));
}

bool set_log_json_path(const std::string& path) {
  std::lock_guard<std::mutex> lock(g_mutex);
  if (g_sink_is_file && g_sink != nullptr) std::fclose(g_sink);
  g_sink = nullptr;
  g_sink_is_file = false;
  if (path.empty()) return true;
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  g_sink = f;
  g_sink_is_file = true;
  return true;
}

void close_log_json() { set_log_json_path(""); }

void set_log_deterministic(bool on) {
  g_deterministic.store(on, std::memory_order_relaxed);
}

bool log_deterministic() {
  return g_deterministic.load(std::memory_order_relaxed);
}

std::uint64_t log_suppressed_total() {
  return g_suppressed_total.load(std::memory_order_relaxed);
}

bool log_should_emit(LogSite& site, LogLevel level, const char* file,
                     int line) {
  if (static_cast<int>(level) < g_min_level.load(std::memory_order_relaxed)) {
    return false;
  }
  // Deterministic mode: the limiter reads the clock, so it is disabled —
  // what gets logged must be a pure function of the workload.
  if (g_deterministic.load(std::memory_order_relaxed)) return true;

  std::lock_guard<std::mutex> lock(g_mutex);
  const std::int64_t now = steady_now_ns();
  double tokens = site.tokens.load(std::memory_order_relaxed);
  const std::int64_t last = site.last_refill_ns.load(std::memory_order_relaxed);
  if (tokens < 0.0) {
    tokens = kLogBurst;  // first use of this site
  } else {
    tokens += static_cast<double>(now - last) * 1e-9 * kLogRefillPerSec;
    if (tokens > kLogBurst) tokens = kLogBurst;
  }
  site.last_refill_ns.store(now, std::memory_order_relaxed);
  if (tokens < 1.0) {
    site.tokens.store(tokens, std::memory_order_relaxed);
    site.suppressed.fetch_add(1, std::memory_order_relaxed);
    g_suppressed_total.fetch_add(1, std::memory_order_relaxed);
    counter("obs.log.suppressed").add(1);
    // Per-site counter, resolved once per site (we hold g_mutex, so the
    // first-suppression bookkeeping below cannot race another thread).
    Counter* per_site = site.suppressed_counter.load(std::memory_order_relaxed);
    if (per_site == nullptr) {
      char name[192];
      std::snprintf(name, sizeof(name), "obs.log.suppressed.%s:%d",
                    basename_of(file), line);
      per_site = &counter(name);
      site.suppressed_counter.store(per_site, std::memory_order_relaxed);
      g_suppressing_sites.fetch_add(1, std::memory_order_relaxed);
      std::call_once(g_summary_once,
                     [] { std::atexit(print_suppression_summary); });
    }
    per_site->add(1);
    return false;
  }
  site.tokens.store(tokens - 1.0, std::memory_order_relaxed);
  return true;
}

void log_emit(LogSite& site, LogLevel level, const char* file, int line,
              const char* fmt, ...) {
  char msg[512];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(msg, sizeof(msg), fmt, args);
  va_end(args);

  std::string record = "{";
  if (!g_deterministic.load(std::memory_order_relaxed)) {
    char ts[48];
    std::snprintf(ts, sizeof(ts), "\"ts\": %.6f, ", wall_now_s());
    record += ts;
  }
  record += "\"level\": \"";
  record += log_level_name(level);
  record += "\", \"site\": \"";
  record += common::json_escape(basename_of(file));
  char linebuf[16];
  std::snprintf(linebuf, sizeof(linebuf), ":%d", line);
  record += linebuf;
  record += "\", \"msg\": \"";
  record += common::json_escape(msg);
  record += "\"";
  const std::uint64_t suppressed =
      site.suppressed.exchange(0, std::memory_order_relaxed);
  if (suppressed > 0) {
    char buf[48];
    std::snprintf(buf, sizeof(buf), ", \"suppressed\": %llu",
                  static_cast<unsigned long long>(suppressed));
    record += buf;
  }
  record += "}\n";

  std::lock_guard<std::mutex> lock(g_mutex);
  std::FILE* out = g_sink != nullptr ? g_sink : stderr;
  std::fputs(record.c_str(), out);
  std::fflush(out);
}

}  // namespace pbpair::obs
