#include "obs/bench_compare.h"

namespace pbpair::obs {
namespace {

const common::JsonValue* find_kernel(const common::JsonValue& report,
                                     const std::string& name) {
  const common::JsonValue* kernels = report.find("kernels");
  if (kernels == nullptr || !kernels->is_array()) return nullptr;
  for (const common::JsonValue& entry : kernels->items()) {
    if (entry.string_at("name") == name) return &entry;
  }
  return nullptr;
}

bool is_ns_field(const std::string& key) {
  return key.size() > 3 && key.compare(key.size() - 3, 3, "_ns") == 0;
}

const common::JsonValue* find_fec_row(const common::JsonValue& report,
                                      const std::string& name) {
  const common::JsonValue* rows = report.find("fec_rows");
  if (rows == nullptr || !rows->is_array()) return nullptr;
  for (const common::JsonValue& entry : rows->items()) {
    if (entry.string_at("name") == name) return &entry;
  }
  return nullptr;
}

const common::JsonValue* find_wire_row(const common::JsonValue& report,
                                       const std::string& name) {
  const common::JsonValue* rows = report.find("wire_rows");
  if (rows == nullptr || !rows->is_array()) return nullptr;
  for (const common::JsonValue& entry : rows->items()) {
    if (entry.string_at("name") == name) return &entry;
  }
  return nullptr;
}

const common::JsonValue* find_obs_row(const common::JsonValue& report,
                                      const std::string& name) {
  const common::JsonValue* rows = report.find("obs_rows");
  if (rows == nullptr || !rows->is_array()) return nullptr;
  for (const common::JsonValue& entry : rows->items()) {
    if (entry.string_at("name") == name) return &entry;
  }
  return nullptr;
}

const common::JsonValue* find_sessions_row(const common::JsonValue& report,
                                           const std::string& name) {
  const common::JsonValue* rows = report.find("sessions_rows");
  if (rows == nullptr || !rows->is_array()) return nullptr;
  for (const common::JsonValue& entry : rows->items()) {
    if (entry.string_at("name") == name) return &entry;
  }
  return nullptr;
}

}  // namespace

BenchComparison compare_bench_reports(const common::JsonValue& baseline,
                                      const common::JsonValue& current,
                                      double threshold) {
  BenchComparison result;
  const common::JsonValue* base_kernels = baseline.find("kernels");
  if (base_kernels == nullptr || !base_kernels->is_array()) return result;

  for (const common::JsonValue& base_entry : base_kernels->items()) {
    const std::string& name = base_entry.string_at("name");
    if (name.empty()) continue;
    const common::JsonValue* cur_entry = find_kernel(current, name);
    if (cur_entry == nullptr) {
      result.missing_kernels.push_back(name);
      continue;
    }
    for (const auto& [key, value] : base_entry.members()) {
      if (!is_ns_field(key) || !value.is_number()) continue;
      const common::JsonValue* cur_value = cur_entry->find(key);
      // A backend can legitimately disappear (baseline machine had AVX2,
      // this one does not); only fields measured by BOTH runs compare.
      if (cur_value == nullptr || !cur_value->is_number()) continue;
      BenchDelta delta;
      delta.kernel = name;
      delta.field = key;
      delta.baseline_ns = value.as_number();
      delta.current_ns = cur_value->as_number();
      delta.regression = delta.baseline_ns > 0.0 &&
                         delta.current_ns >
                             delta.baseline_ns * (1.0 + threshold);
      result.deltas.push_back(std::move(delta));
    }
  }
  const common::JsonValue* cur_kernels = current.find("kernels");
  if (cur_kernels != nullptr && cur_kernels->is_array()) {
    for (const common::JsonValue& cur_entry : cur_kernels->items()) {
      const std::string& name = cur_entry.string_at("name");
      if (name.empty()) continue;
      if (find_kernel(baseline, name) == nullptr) {
        result.unknown_kernels.push_back(name);
      }
    }
  }
  return result;
}

FecComparison compare_fec_reports(const common::JsonValue& baseline,
                                  const common::JsonValue& current,
                                  double threshold) {
  FecComparison result;
  const common::JsonValue* base_rows = baseline.find("fec_rows");
  if (base_rows == nullptr || !base_rows->is_array()) return result;

  for (const common::JsonValue& base_entry : base_rows->items()) {
    const std::string& name = base_entry.string_at("name");
    if (name.empty()) continue;
    const common::JsonValue* cur_entry = find_fec_row(current, name);
    if (cur_entry == nullptr) {
      result.missing_rows.push_back(name);
      continue;
    }
    auto both = [&](const char* field, const common::JsonValue** base_value,
                    const common::JsonValue** cur_value) {
      *base_value = base_entry.find(field);
      *cur_value = cur_entry->find(field);
      return *base_value != nullptr && (*base_value)->is_number() &&
             *cur_value != nullptr && (*cur_value)->is_number();
    };
    const common::JsonValue* base_value = nullptr;
    const common::JsonValue* cur_value = nullptr;
    // Recovery rate is a fraction in [0, 1]: gate on ABSOLUTE drop.
    if (both("recovery_rate", &base_value, &cur_value)) {
      FecDelta delta;
      delta.row = name;
      delta.field = "recovery_rate";
      delta.baseline = base_value->as_number();
      delta.current = cur_value->as_number();
      delta.regression = delta.current < delta.baseline - threshold;
      result.deltas.push_back(std::move(delta));
    }
    // Energy per frame: gate on RELATIVE growth, like the kernel timings.
    if (both("j_per_frame", &base_value, &cur_value)) {
      FecDelta delta;
      delta.row = name;
      delta.field = "j_per_frame";
      delta.baseline = base_value->as_number();
      delta.current = cur_value->as_number();
      delta.regression = delta.baseline > 0.0 &&
                         delta.current > delta.baseline * (1.0 + threshold);
      result.deltas.push_back(std::move(delta));
    }
  }
  const common::JsonValue* cur_rows = current.find("fec_rows");
  if (cur_rows != nullptr && cur_rows->is_array()) {
    for (const common::JsonValue& cur_entry : cur_rows->items()) {
      const std::string& name = cur_entry.string_at("name");
      if (name.empty()) continue;
      if (find_fec_row(baseline, name) == nullptr) {
        result.unknown_rows.push_back(name);
      }
    }
  }
  return result;
}

WireComparison compare_wire_reports(const common::JsonValue& baseline,
                                    const common::JsonValue& current,
                                    double threshold) {
  WireComparison result;
  const common::JsonValue* base_rows = baseline.find("wire_rows");
  if (base_rows == nullptr || !base_rows->is_array()) return result;

  for (const common::JsonValue& base_entry : base_rows->items()) {
    const std::string& name = base_entry.string_at("name");
    if (name.empty()) continue;
    const common::JsonValue* cur_entry = find_wire_row(current, name);
    if (cur_entry == nullptr) {
      result.missing_rows.push_back(name);
      continue;
    }
    const common::JsonValue* base_value = base_entry.find("copy_reduction");
    const common::JsonValue* cur_value = cur_entry->find("copy_reduction");
    if (base_value == nullptr || !base_value->is_number() ||
        cur_value == nullptr || !cur_value->is_number()) {
      continue;
    }
    WireDelta delta;
    delta.row = name;
    delta.field = "copy_reduction";
    delta.baseline = base_value->as_number();
    delta.current = cur_value->as_number();
    // A fraction in [0, 1]: gate on ABSOLUTE drop, like recovery_rate.
    delta.regression = delta.current < delta.baseline - threshold;
    result.deltas.push_back(std::move(delta));
  }
  const common::JsonValue* cur_rows = current.find("wire_rows");
  if (cur_rows != nullptr && cur_rows->is_array()) {
    for (const common::JsonValue& cur_entry : cur_rows->items()) {
      const std::string& name = cur_entry.string_at("name");
      if (name.empty()) continue;
      if (find_wire_row(baseline, name) == nullptr) {
        result.unknown_rows.push_back(name);
      }
    }
  }
  return result;
}

ObsComparison compare_obs_reports(const common::JsonValue& baseline,
                                  const common::JsonValue& current,
                                  double threshold) {
  ObsComparison result;
  const common::JsonValue* base_rows = baseline.find("obs_rows");
  if (base_rows == nullptr || !base_rows->is_array()) return result;

  for (const common::JsonValue& base_entry : base_rows->items()) {
    const std::string& name = base_entry.string_at("name");
    if (name.empty()) continue;
    const common::JsonValue* cur_entry = find_obs_row(current, name);
    if (cur_entry == nullptr) {
      result.missing_rows.push_back(name);
      continue;
    }
    // Both gated fields are "smaller is better" costs: relative growth.
    for (const char* field : {"ns_per_op", "overhead_ratio"}) {
      const common::JsonValue* base_value = base_entry.find(field);
      const common::JsonValue* cur_value = cur_entry->find(field);
      if (base_value == nullptr || !base_value->is_number() ||
          cur_value == nullptr || !cur_value->is_number()) {
        continue;
      }
      ObsDelta delta;
      delta.row = name;
      delta.field = field;
      delta.baseline = base_value->as_number();
      delta.current = cur_value->as_number();
      delta.regression = delta.baseline > 0.0 &&
                         delta.current > delta.baseline * (1.0 + threshold);
      result.deltas.push_back(std::move(delta));
    }
  }
  const common::JsonValue* cur_rows = current.find("obs_rows");
  if (cur_rows != nullptr && cur_rows->is_array()) {
    for (const common::JsonValue& cur_entry : cur_rows->items()) {
      const std::string& name = cur_entry.string_at("name");
      if (name.empty()) continue;
      if (find_obs_row(baseline, name) == nullptr) {
        result.unknown_rows.push_back(name);
      }
    }
  }
  return result;
}

SessionsComparison compare_sessions_reports(const common::JsonValue& baseline,
                                            const common::JsonValue& current,
                                            double threshold) {
  SessionsComparison result;
  const common::JsonValue* base_rows = baseline.find("sessions_rows");
  if (base_rows == nullptr || !base_rows->is_array()) return result;

  for (const common::JsonValue& base_entry : base_rows->items()) {
    const std::string& name = base_entry.string_at("name");
    if (name.empty()) continue;
    const common::JsonValue* cur_entry = find_sessions_row(current, name);
    if (cur_entry == nullptr) {
      result.missing_rows.push_back(name);
      continue;
    }
    const common::JsonValue* base_value = nullptr;
    const common::JsonValue* cur_value = nullptr;
    auto both = [&](const char* field) {
      base_value = base_entry.find(field);
      cur_value = cur_entry->find(field);
      return base_value != nullptr && base_value->is_number() &&
             cur_value != nullptr && cur_value->is_number();
    };
    // Throughput floor: fail when the baseline exceeds the current rate by
    // the threshold factor. Phrased as baseline > current * (1 + t) rather
    // than current < baseline * (1 - t) so thresholds above 1.0 (needed by
    // the latency gate's bucket quantization) keep a meaningful floor.
    if (both("sessions_per_sec")) {
      SessionsDelta delta;
      delta.row = name;
      delta.field = "sessions_per_sec";
      delta.baseline = base_value->as_number();
      delta.current = cur_value->as_number();
      delta.regression = delta.current > 0.0 &&
                         delta.baseline > delta.current * (1.0 + threshold);
      result.deltas.push_back(std::move(delta));
    }
    // Latency ceiling: relative growth, like the kernel timings. The p99
    // sits on power-of-two bucket bounds, so one bucket jump doubles it —
    // callers gate with threshold >= 1.0.
    if (both("p99_frame_ms")) {
      SessionsDelta delta;
      delta.row = name;
      delta.field = "p99_frame_ms";
      delta.baseline = base_value->as_number();
      delta.current = cur_value->as_number();
      delta.regression = delta.baseline > 0.0 &&
                         delta.current > delta.baseline * (1.0 + threshold);
      result.deltas.push_back(std::move(delta));
    }
  }
  const common::JsonValue* cur_rows = current.find("sessions_rows");
  if (cur_rows != nullptr && cur_rows->is_array()) {
    for (const common::JsonValue& cur_entry : cur_rows->items()) {
      const std::string& name = cur_entry.string_at("name");
      if (name.empty()) continue;
      if (find_sessions_row(baseline, name) == nullptr) {
        result.unknown_rows.push_back(name);
      }
    }
  }
  return result;
}

}  // namespace pbpair::obs
