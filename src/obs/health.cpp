#include "obs/health.h"

#include <algorithm>
#include <cstdio>

#include "common/check.h"
#include "common/json.h"
#include "obs/metrics.h"

namespace pbpair::obs {

const char* health_state_name(HealthState state) {
  switch (state) {
    case HealthState::kHealthy: return "healthy";
    case HealthState::kDegraded: return "degraded";
    case HealthState::kCritical: return "critical";
  }
  return "?";
}

SessionHealth::SessionHealth(std::string label, HealthConfig config)
    : label_(std::move(label)), config_(std::move(config)) {
  PB_CHECK(config_.window_frames > 0);
  PB_CHECK(config_.ewma_alpha > 0.0 && config_.ewma_alpha <= 1.0);
  PB_CHECK(config_.frame_rate_hz > 0.0);
  window_.reserve(static_cast<std::size_t>(config_.window_frames));
}

void SessionHealth::on_frame(const FrameHealthSample& sample) {
  std::lock_guard<std::mutex> lock(mutex_);
  const std::size_t w = static_cast<std::size_t>(config_.window_frames);
  if (window_.size() < w) {
    window_.push_back(sample);
  } else {
    const FrameHealthSample& old = window_[window_next_];
    psnr_sum_ -= old.psnr_db;
    bytes_sum_ -= old.bytes;
    sent_sum_ -= old.packets_sent;
    delivered_sum_ -= old.packets_delivered;
    intra_sum_ -= old.intra_mbs;
    mbs_sum_ -= old.total_mbs;
    energy_sum_j_ -= old.energy_j;
    window_[window_next_] = sample;
    window_next_ = (window_next_ + 1) % w;
  }
  psnr_sum_ += sample.psnr_db;
  bytes_sum_ += sample.bytes;
  sent_sum_ += sample.packets_sent;
  delivered_sum_ += sample.packets_delivered;
  intra_sum_ += sample.intra_mbs;
  mbs_sum_ += sample.total_mbs;
  energy_sum_j_ += sample.energy_j;

  psnr_ewma_db_ = frames_ == 0 ? sample.psnr_db
                               : config_.ewma_alpha * sample.psnr_db +
                                     (1.0 - config_.ewma_alpha) * psnr_ewma_db_;
  energy_total_j_ += sample.energy_j;
  ++frames_;

  update_state_locked();
  publish_metrics_locked();
}

HealthSnapshot SessionHealth::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return snapshot_locked();
}

HealthSnapshot SessionHealth::snapshot_locked() const {
  HealthSnapshot snap;
  snap.state = state_;
  snap.frames = frames_;
  snap.transitions = transitions_;
  const double n = static_cast<double>(window_.size());
  if (n > 0.0) {
    snap.psnr_window_db = psnr_sum_ / n;
    snap.bytes_per_frame = static_cast<double>(bytes_sum_) / n;
    snap.energy_j_per_frame = energy_sum_j_ / n;
  }
  snap.psnr_ewma_db = psnr_ewma_db_;
  if (sent_sum_ > 0) {
    snap.eff_plr = 1.0 - static_cast<double>(delivered_sum_) /
                             static_cast<double>(sent_sum_);
  }
  if (mbs_sum_ > 0) {
    snap.intra_ratio =
        static_cast<double>(intra_sum_) / static_cast<double>(mbs_sum_);
  }
  snap.battery_remaining_j =
      std::max(0.0, config_.battery_capacity_j - energy_total_j_);
  const double drain_j_per_s =
      snap.energy_j_per_frame * config_.frame_rate_hz;
  snap.projected_lifetime_s =
      drain_j_per_s > 0.0 ? snap.battery_remaining_j / drain_j_per_s : 0.0;
  return snap;
}

void SessionHealth::update_state_locked() {
  if (frames_ < static_cast<std::uint64_t>(config_.warmup_frames)) return;
  const HealthSnapshot snap = snapshot_locked();
  const HealthThresholds& t = config_.thresholds;

  // Escalation looks at the enter thresholds.
  HealthState desired = HealthState::kHealthy;
  if (snap.eff_plr >= t.plr_critical_enter ||
      snap.psnr_window_db <= t.psnr_critical_enter_db) {
    desired = HealthState::kCritical;
  } else if (snap.eff_plr >= t.plr_degraded_enter ||
             snap.psnr_window_db <= t.psnr_degraded_enter_db) {
    desired = HealthState::kDegraded;
  }

  HealthState next = state_;
  if (desired > state_) {
    next = desired;  // escalate immediately
  } else if (desired < state_) {
    // De-escalate one step at a time, and only once the estimates are
    // clear of the current state's exit thresholds.
    if (state_ == HealthState::kCritical &&
        snap.eff_plr < t.plr_critical_exit &&
        snap.psnr_window_db > t.psnr_critical_exit_db) {
      next = std::max(desired, HealthState::kDegraded);
    } else if (state_ == HealthState::kDegraded &&
               snap.eff_plr < t.plr_degraded_exit &&
               snap.psnr_window_db > t.psnr_degraded_exit_db) {
      next = HealthState::kHealthy;
    }
  }
  if (next == state_) return;

  const HealthState from = state_;
  state_ = next;
  ++transitions_;
  if (enabled()) {
    counter(session_metric(label_, "health_transitions")).add(1);
    counter("health.transitions").add(1);
  }
  if (config_.on_transition) {
    HealthSnapshot at_transition = snapshot_locked();
    config_.on_transition(label_, from, next, at_transition);
  }
}

void SessionHealth::publish_metrics_locked() const {
  if (!enabled()) return;
  const HealthSnapshot snap = snapshot_locked();
  gauge(session_metric(label_, "health_state"))
      .set(static_cast<double>(snap.state));
  gauge(session_metric(label_, "psnr_db")).set(snap.psnr_window_db);
  gauge(session_metric(label_, "psnr_ewma_db")).set(snap.psnr_ewma_db);
  gauge(session_metric(label_, "eff_plr")).set(snap.eff_plr);
  gauge(session_metric(label_, "intra_ratio")).set(snap.intra_ratio);
  gauge(session_metric(label_, "j_per_frame")).set(snap.energy_j_per_frame);
  gauge(session_metric(label_, "battery_remaining_j"))
      .set(snap.battery_remaining_j);
  gauge(session_metric(label_, "projected_lifetime_s"))
      .set(snap.projected_lifetime_s);
}

HealthRegistry& HealthRegistry::global() {
  static HealthRegistry* registry = new HealthRegistry();  // never destroyed
  return *registry;
}

std::shared_ptr<SessionHealth> HealthRegistry::create(
    const std::string& label, const HealthConfig& config) {
  auto session = std::make_shared<SessionHealth>(label, config);
  std::lock_guard<std::mutex> lock(mutex_);
  for (std::shared_ptr<SessionHealth>& slot : sessions_) {
    if (slot->label() == label) {
      slot = session;
      return session;
    }
  }
  sessions_.push_back(session);
  return session;
}

std::vector<std::shared_ptr<SessionHealth>> HealthRegistry::sessions() const {
  std::vector<std::shared_ptr<SessionHealth>> out;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    out = sessions_;
  }
  std::sort(out.begin(), out.end(),
            [](const std::shared_ptr<SessionHealth>& a,
               const std::shared_ptr<SessionHealth>& b) {
              return a->label() < b->label();
            });
  return out;
}

HealthStateCounts HealthRegistry::state_counts() const {
  HealthStateCounts counts;
  for (const std::shared_ptr<SessionHealth>& session : sessions()) {
    switch (session->snapshot().state) {
      case HealthState::kHealthy: ++counts.healthy; break;
      case HealthState::kDegraded: ++counts.degraded; break;
      case HealthState::kCritical: ++counts.critical; break;
    }
  }
  return counts;
}

std::string HealthRegistry::healthz_json() const {
  int counts[3] = {0, 0, 0};
  std::string out = "{\"sessions\": [";
  bool first = true;
  for (const std::shared_ptr<SessionHealth>& session : sessions()) {
    const HealthSnapshot snap = session->snapshot();
    ++counts[static_cast<int>(snap.state)];
    char buf[384];
    std::snprintf(
        buf, sizeof(buf),
        "%s{\"session\": \"%s\", \"state\": \"%s\", \"frames\": %llu, "
        "\"transitions\": %llu, \"psnr_db\": %.2f, \"eff_plr\": %.4f, "
        "\"intra_ratio\": %.4f, \"bytes_per_frame\": %.1f, "
        "\"j_per_frame\": %.6f, \"battery_remaining_j\": %.3f, "
        "\"projected_lifetime_s\": %.1f}",
        first ? "" : ", ", common::json_escape(session->label()).c_str(),
        health_state_name(snap.state),
        static_cast<unsigned long long>(snap.frames),
        static_cast<unsigned long long>(snap.transitions), snap.psnr_window_db,
        snap.eff_plr, snap.intra_ratio, snap.bytes_per_frame,
        snap.energy_j_per_frame, snap.battery_remaining_j,
        snap.projected_lifetime_s);
    out += buf;
    first = false;
  }
  char tail[128];
  std::snprintf(tail, sizeof(tail),
                "], \"states\": {\"healthy\": %d, \"degraded\": %d, "
                "\"critical\": %d}}\n",
                counts[0], counts[1], counts[2]);
  out += tail;
  return out;
}

void HealthRegistry::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  sessions_.clear();
}

}  // namespace pbpair::obs
