#include "obs/trace.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <map>
#include <mutex>
#include <vector>

#include "common/json.h"
#include "obs/metrics.h"

namespace pbpair::obs {
namespace {

using Clock = std::chrono::steady_clock;

struct Span {
  const char* name;
  std::int64_t start_ns;
  std::int64_t dur_ns;
  int tid;
  std::int64_t arg;
  const char* arg_name;
};

// Unbounded growth would turn long sweeps into memory leaks; past the cap
// spans are dropped (and counted) rather than evicted, so the trace always
// shows the run's beginning. Runtime-adjustable so tests can exercise the
// overflow path cheaply (set_trace_capacity).
constexpr std::size_t kDefaultMaxSpans = 1 << 20;
std::atomic<std::size_t> g_max_spans{kDefaultMaxSpans};

std::mutex g_mutex;
std::vector<Span>& spans() {
  static std::vector<Span>* v = new std::vector<Span>();
  return *v;
}
std::map<int, std::string>& thread_names() {
  static std::map<int, std::string>* m = new std::map<int, std::string>();
  return *m;
}

Clock::time_point trace_epoch() {
  static const Clock::time_point epoch = Clock::now();
  return epoch;
}

std::atomic<int> g_next_tid{0};

int assign_thread_id() {
  thread_local int id = -1;
  if (id < 0) id = g_next_tid.fetch_add(1, std::memory_order_relaxed);
  return id;
}

}  // namespace

std::int64_t trace_now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                              trace_epoch())
      .count();
}

int current_thread_id() { return assign_thread_id(); }

void set_thread_name(const std::string& name) {
  const int tid = assign_thread_id();
  std::lock_guard<std::mutex> lock(g_mutex);
  thread_names()[tid] = name;
}

void record_span(const char* name, std::int64_t start_ns, std::int64_t dur_ns,
                 std::int64_t arg, const char* arg_name) {
  if (!enabled()) return;
  const int tid = assign_thread_id();
  std::lock_guard<std::mutex> lock(g_mutex);
  if (spans().size() >= g_max_spans.load(std::memory_order_relaxed)) {
    counter("obs.trace.dropped").add(1);
    return;
  }
  spans().push_back(Span{name, start_ns, dur_ns, tid, arg,
                         arg_name != nullptr ? arg_name : "i"});
}

ScopedSpan::ScopedSpan(const char* name, std::int64_t arg,
                       const char* arg_name)
    : name_(name),
      arg_(arg),
      arg_name_(arg_name),
      start_ns_(enabled() ? trace_now_ns() : -1) {}

ScopedSpan::~ScopedSpan() {
  if (start_ns_ < 0) return;
  record_span(name_, start_ns_, trace_now_ns() - start_ns_, arg_, arg_name_);
}

std::size_t trace_span_count() {
  std::lock_guard<std::mutex> lock(g_mutex);
  return spans().size();
}

void set_trace_capacity(std::size_t max_spans) {
  g_max_spans.store(max_spans, std::memory_order_relaxed);
}

std::size_t trace_capacity() {
  return g_max_spans.load(std::memory_order_relaxed);
}

void clear_trace() {
  std::lock_guard<std::mutex> lock(g_mutex);
  spans().clear();
}

bool write_chrome_trace(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  std::lock_guard<std::mutex> lock(g_mutex);

  // Span, thread, and arg names are caller-supplied: escape them all, or a
  // single quote in a name produces an unloadable trace.
  std::fprintf(f, "{\"traceEvents\": [\n");
  bool first = true;
  for (const auto& [tid, name] : thread_names()) {
    std::fprintf(f,
                 "%s{\"ph\": \"M\", \"name\": \"thread_name\", \"pid\": 1, "
                 "\"tid\": %d, \"args\": {\"name\": \"%s\"}}",
                 first ? "" : ",\n", tid,
                 common::json_escape(name).c_str());
    first = false;
  }
  for (const Span& span : spans()) {
    // Chrome's ts/dur are microseconds; fractional values keep ns detail.
    std::fprintf(f,
                 "%s{\"ph\": \"X\", \"name\": \"%s\", \"pid\": 1, "
                 "\"tid\": %d, \"ts\": %.3f, \"dur\": %.3f",
                 first ? "" : ",\n", common::json_escape(span.name).c_str(),
                 span.tid, static_cast<double>(span.start_ns) / 1e3,
                 static_cast<double>(span.dur_ns) / 1e3);
    first = false;
    if (span.arg >= 0) {
      std::fprintf(f, ", \"args\": {\"%s\": %lld}",
                   common::json_escape(span.arg_name).c_str(),
                   static_cast<long long>(span.arg));
    }
    std::fprintf(f, "}");
  }
  std::fprintf(f, "\n]}\n");
  std::fclose(f);
  return true;
}

}  // namespace pbpair::obs
