// Benchmark regression detection over BENCH_*.json reports.
//
// Compares the per-kernel ns/call numbers of a freshly produced report
// against a committed baseline: any `*_ns` field present in both reports
// for the same kernel name counts, and a measurement is a regression when
// current > baseline * (1 + threshold). The comparison logic lives in the
// library so tests can drive it; tools/check_bench_regression is the thin
// CLI used by CI.
#pragma once

#include <string>
#include <vector>

#include "common/json.h"

namespace pbpair::obs {

struct BenchDelta {
  std::string kernel;
  std::string field;      // e.g. "scalar_ns"
  double baseline_ns = 0.0;
  double current_ns = 0.0;
  bool regression = false;

  /// current / baseline (1.0 = unchanged, 2.0 = twice as slow).
  double ratio() const {
    return baseline_ns > 0.0 ? current_ns / baseline_ns : 1.0;
  }
};

struct BenchComparison {
  std::vector<BenchDelta> deltas;
  /// Kernels in the baseline that the current report no longer measures
  /// (treated as failures: a silently vanished benchmark hides a
  /// regression).
  std::vector<std::string> missing_kernels;
  /// Kernels the current report measures that the baseline has never seen
  /// (warn-only: a newly added kernel must not fail CI before its baseline
  /// row is committed).
  std::vector<std::string> unknown_kernels;

  bool ok() const {
    if (!missing_kernels.empty()) return false;
    for (const BenchDelta& d : deltas) {
      if (d.regression) return false;
    }
    return true;
  }
};

/// Diffs two reports with the BENCH_kernels.json schema ("kernels" array
/// of {"name", "*_ns"...}). `threshold` is the allowed fractional
/// slowdown, e.g. 0.25 = fail beyond +25% ns/call.
BenchComparison compare_bench_reports(const common::JsonValue& baseline,
                                      const common::JsonValue& current,
                                      double threshold);

/// One gated measurement of a BENCH_fec.json row. Unlike the kernel
/// timings, FEC rows are fully deterministic (seeded loss, modeled
/// energy), so the threshold only has to absorb cross-compiler
/// floating-point noise, not scheduler jitter.
struct FecDelta {
  std::string row;        // e.g. "ge/hybrid/k8m2"
  std::string field;      // "recovery_rate" | "j_per_frame"
  double baseline = 0.0;
  double current = 0.0;
  bool regression = false;
};

struct FecComparison {
  std::vector<FecDelta> deltas;
  /// Rows in the baseline that the current report no longer emits
  /// (failures: a vanished matrix cell hides a regression).
  std::vector<std::string> missing_rows;
  /// Rows measured now but absent from the committed baseline (warn-only:
  /// a new operating point must not fail CI before its baseline row
  /// lands).
  std::vector<std::string> unknown_rows;

  bool ok() const {
    if (!missing_rows.empty()) return false;
    for (const FecDelta& d : deltas) {
      if (d.regression) return false;
    }
    return true;
  }
};

/// Diffs two reports with the BENCH_fec.json schema ("fec_rows" array of
/// {"name", "recovery_rate", "j_per_frame", ...}), matching rows by name.
/// Regressions: recovery_rate falling more than `threshold` ABSOLUTE
/// below baseline, or j_per_frame growing more than `threshold` RELATIVE
/// above it. Improvements never fail.
FecComparison compare_fec_reports(const common::JsonValue& baseline,
                                  const common::JsonValue& current,
                                  double threshold);

/// One gated measurement of a BENCH_wire.json row. copy_reduction is the
/// deterministic fraction of per-frame payload-copy bytes the arena path
/// eliminates (copy-ledger counts, not timing), so like the FEC rows the
/// threshold only absorbs cross-compiler noise. packets_per_s in the same
/// report is wall-clock and stays informational — never gated.
struct WireDelta {
  std::string row;        // e.g. "ge/hybrid/k8m2"
  std::string field;      // "copy_reduction"
  double baseline = 0.0;
  double current = 0.0;
  bool regression = false;
};

struct WireComparison {
  std::vector<WireDelta> deltas;
  /// Rows in the baseline that the current report no longer emits
  /// (failures: a vanished scenario hides a regression).
  std::vector<std::string> missing_rows;
  /// Rows measured now but absent from the committed baseline (warn-only).
  std::vector<std::string> unknown_rows;

  bool ok() const {
    if (!missing_rows.empty()) return false;
    for (const WireDelta& d : deltas) {
      if (d.regression) return false;
    }
    return true;
  }
};

/// Diffs two reports with the BENCH_wire.json schema ("wire_rows" array of
/// {"name", "copy_reduction", ...}), matching rows by name. Regression:
/// copy_reduction falling more than `threshold` ABSOLUTE below baseline
/// (it is a fraction in [0, 1]). Improvements never fail.
WireComparison compare_wire_reports(const common::JsonValue& baseline,
                                    const common::JsonValue& current,
                                    double threshold);

/// One gated measurement of a BENCH_obs.json row. The bump/* rows gate
/// ns_per_op (the sharded counter/histogram fast path); the pipeline/*
/// rows gate overhead_ratio (full pipeline with obs on over obs off).
/// Both are wall-clock, so the CI threshold absorbs scheduler jitter.
struct ObsDelta {
  std::string row;        // e.g. "bump/t8", "pipeline/t2"
  std::string field;      // "ns_per_op" | "overhead_ratio"
  double baseline = 0.0;
  double current = 0.0;
  bool regression = false;
};

struct ObsComparison {
  std::vector<ObsDelta> deltas;
  /// Rows in the baseline that the current report no longer emits
  /// (failures: a vanished thread count hides a scaling regression).
  std::vector<std::string> missing_rows;
  /// Rows measured now but absent from the committed baseline (warn-only).
  std::vector<std::string> unknown_rows;

  bool ok() const {
    if (!missing_rows.empty()) return false;
    for (const ObsDelta& d : deltas) {
      if (d.regression) return false;
    }
    return true;
  }
};

/// Diffs two reports with the BENCH_obs.json schema ("obs_rows" array of
/// {"name", "ns_per_op"?, "overhead_ratio"?, ...}), matching rows by name.
/// Both gated fields regress on RELATIVE growth beyond `threshold`
/// (current > baseline * (1 + threshold)). Improvements never fail.
ObsComparison compare_obs_reports(const common::JsonValue& baseline,
                                  const common::JsonValue& current,
                                  double threshold);

/// One gated measurement of a BENCH_sessions.json row. sessions_per_sec
/// is a throughput FLOOR (bigger is better), p99_frame_ms a latency
/// CEILING (smaller is better). Both are wall-clock; p99 additionally
/// comes from log2-bucket histograms whose quantiles sit on power-of-two
/// plateaus, so a CI threshold must allow at least one bucket jump
/// (a 2x ratio — use threshold >= 1.0 for the sessions gate).
struct SessionsDelta {
  std::string row;        // e.g. "n256", "n10000"
  std::string field;      // "sessions_per_sec" | "p99_frame_ms"
  double baseline = 0.0;
  double current = 0.0;
  bool regression = false;
};

struct SessionsComparison {
  std::vector<SessionsDelta> deltas;
  /// Rows in the baseline that the current report no longer emits
  /// (failures: a vanished scaling point hides a capacity regression).
  std::vector<std::string> missing_rows;
  /// Rows measured now but absent from the committed baseline (warn-only).
  std::vector<std::string> unknown_rows;

  bool ok() const {
    if (!missing_rows.empty()) return false;
    for (const SessionsDelta& d : deltas) {
      if (d.regression) return false;
    }
    return true;
  }
};

/// Diffs two reports with the BENCH_sessions.json schema ("sessions_rows"
/// array of {"name", "sessions_per_sec", "p99_frame_ms", ...}), matching
/// rows by name. Regressions: sessions_per_sec falling so that
/// baseline > current * (1 + threshold) (throughput floor, symmetric with
/// the growth gates so thresholds > 1 stay meaningful), or p99_frame_ms
/// growing beyond baseline * (1 + threshold) (latency ceiling).
/// Improvements never fail.
SessionsComparison compare_sessions_reports(const common::JsonValue& baseline,
                                            const common::JsonValue& current,
                                            double threshold);

}  // namespace pbpair::obs
