// Prometheus text exposition (format 0.0.4) for the metrics registry,
// plus a parser for the same subset — the `pbpair monitor` client scrapes
// what render_prometheus() produced.
//
// Naming (DESIGN.md §10): every family is prefixed `pbpair_` and dots
// become underscores (`encoder.frames` -> `pbpair_encoder_frames_total`).
// Per-session metrics (`session.<label>.<metric>`, obs::session_metric)
// become ONE family per metric with a session label:
//   session.s007.frames -> pbpair_session_frames_total{session="s007"}
// Counters get the conventional `_total` suffix; histograms render as
// cumulative `_bucket{le="..."}` lines over the fixed power-of-two ns
// layout plus `_sum` / `_count`. Output is fully sorted (families by
// name, samples by session label), so identical registry state renders
// byte-identical text — the /metrics endpoint of an idle deterministic
// server never changes between scrapes.
#pragma once

#include <string>
#include <vector>

#include "obs/metrics.h"

namespace pbpair::obs {

/// Renders a snapshot of `registry` in Prometheus text format 0.0.4.
std::string render_prometheus(const Registry& registry = Registry::global());

/// One parsed sample line. `session` is empty for unlabeled families.
struct PromSample {
  std::string family;   // e.g. "pbpair_session_frames_total"
  std::string session;  // e.g. "s007"
  double value = 0.0;
};

/// Parses the renderer's output (comment lines skipped, `name{labels}
/// value` and bare `name value` lines). Returns false on a malformed
/// sample line. Labels other than `session` (e.g. histogram `le`) are
/// left inside `family` verbatim so bucket lines stay distinguishable.
bool parse_prometheus_text(const std::string& text,
                           std::vector<PromSample>* out);

}  // namespace pbpair::obs
