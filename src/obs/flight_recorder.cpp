#include "obs/flight_recorder.h"

#include <unistd.h>

#include <algorithm>
#include <bit>
#include <cstdio>

namespace pbpair::obs {
namespace {

std::size_t round_up_pow2(std::size_t n) {
  if (n < 2) return 2;
  return std::bit_ceil(n);
}

/// Formats one record as a JSONL line into `buf`. Returns the line length
/// (snprintf-truncated lines are still valid JSON-free output for a crash
/// dump, but the buffer is sized so truncation cannot happen for sane
/// labels). Shared by the allocating and async-signal-safe dump paths.
int format_record(char* buf, std::size_t cap, const char* label,
                  const FlightRecord& rec) {
  return std::snprintf(
      buf, cap,
      "{\"session\":\"%s\",\"seq\":%llu,\"frame\":%d,\"event\":\"%s\","
      "\"a\":%lld,\"b\":%lld}\n",
      label, static_cast<unsigned long long>(rec.seq), rec.frame,
      flight_event_name(rec.event), static_cast<long long>(rec.a),
      static_cast<long long>(rec.b));
}

}  // namespace

const char* flight_event_name(FlightEvent event) {
  switch (event) {
    case FlightEvent::kFrameEncoded: return "frame_encoded";
    case FlightEvent::kFrameDecoded: return "frame_decoded";
    case FlightEvent::kFrameLost: return "frame_lost";
    case FlightEvent::kPlrUpdate: return "plr_update";
    case FlightEvent::kFecDecision: return "fec_decision";
    case FlightEvent::kCrcCorruption: return "crc_corruption";
    case FlightEvent::kHealthTransition: return "health_transition";
    case FlightEvent::kFuzzCase: return "fuzz_case";
    case FlightEvent::kSessionShed: return "session_shed";
  }
  return "unknown";
}

FlightRecorder::FlightRecorder(std::string label, std::size_t capacity)
    : label_(std::move(label)), mask_(round_up_pow2(capacity) - 1) {
  slots_ = std::make_unique<Slot[]>(mask_ + 1);
}

void FlightRecorder::record(FlightEvent event, std::int32_t frame,
                            std::int64_t a, std::int64_t b) {
  const std::uint64_t seq = head_.load(std::memory_order_relaxed);
  Slot& slot = slots_[seq & mask_];
  // Relaxed stores: atomics only so a concurrent snapshot() is race-free;
  // the ordering the reader needs comes from the release store of head_.
  slot.seq.store(seq, std::memory_order_relaxed);
  slot.frame.store(frame, std::memory_order_relaxed);
  slot.event.store(static_cast<std::uint8_t>(event),
                   std::memory_order_relaxed);
  slot.a.store(a, std::memory_order_relaxed);
  slot.b.store(b, std::memory_order_relaxed);
  head_.store(seq + 1, std::memory_order_release);
}

std::vector<FlightRecord> FlightRecorder::snapshot() const {
  const std::size_t cap = mask_ + 1;
  const std::uint64_t head1 = head_.load(std::memory_order_acquire);
  const std::uint64_t begin = head1 > cap ? head1 - cap : 0;
  std::vector<FlightRecord> out;
  out.reserve(static_cast<std::size_t>(head1 - begin));
  for (std::uint64_t seq = begin; seq < head1; ++seq) {
    const Slot& slot = slots_[seq & mask_];
    FlightRecord rec;
    rec.seq = slot.seq.load(std::memory_order_relaxed);
    rec.frame = slot.frame.load(std::memory_order_relaxed);
    rec.event =
        static_cast<FlightEvent>(slot.event.load(std::memory_order_relaxed));
    rec.a = slot.a.load(std::memory_order_relaxed);
    rec.b = slot.b.load(std::memory_order_relaxed);
    if (rec.seq == seq) out.push_back(rec);
  }
  // A writer that lapped us during the copy may have produced mixed-seq
  // field reads above. Any slot it could have touched belongs to a seq
  // now older than head2's window, so dropping those removes every
  // potentially-torn record.
  const std::uint64_t head2 = head_.load(std::memory_order_acquire);
  const std::uint64_t begin2 = head2 > cap ? head2 - cap : 0;
  if (begin2 > begin) {
    out.erase(std::remove_if(out.begin(), out.end(),
                             [begin2](const FlightRecord& r) {
                               return r.seq < begin2;
                             }),
              out.end());
  }
  return out;
}

std::string FlightRecorder::dump_jsonl() const {
  std::string out;
  char line[256];
  for (const FlightRecord& rec : snapshot()) {
    const int n = format_record(line, sizeof(line), label_.c_str(), rec);
    if (n > 0) out.append(line, std::min<std::size_t>(
                                    static_cast<std::size_t>(n),
                                    sizeof(line) - 1));
  }
  return out;
}

bool FlightRecorder::dump_to_path(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  const std::string body = dump_jsonl();
  const bool ok = std::fwrite(body.data(), 1, body.size(), f) == body.size();
  return std::fclose(f) == 0 && ok;
}

void FlightRecorder::dump_unsafe(int fd) const {
  const std::size_t cap = mask_ + 1;
  const std::uint64_t head = head_.load(std::memory_order_acquire);
  const std::uint64_t begin = head > cap ? head - cap : 0;
  char line[256];
  for (std::uint64_t seq = begin; seq < head; ++seq) {
    const Slot& slot = slots_[seq & mask_];
    FlightRecord rec;
    rec.seq = slot.seq.load(std::memory_order_relaxed);
    rec.frame = slot.frame.load(std::memory_order_relaxed);
    rec.event =
        static_cast<FlightEvent>(slot.event.load(std::memory_order_relaxed));
    rec.a = slot.a.load(std::memory_order_relaxed);
    rec.b = slot.b.load(std::memory_order_relaxed);
    if (rec.seq != seq) continue;
    const int n = format_record(line, sizeof(line), label_.c_str(), rec);
    if (n > 0) {
      // Best effort from a signal handler; a short write loses tail
      // lines, never corrupts earlier ones.
      const ssize_t written [[maybe_unused]] =
          ::write(fd, line, std::min<std::size_t>(
                                static_cast<std::size_t>(n),
                                sizeof(line) - 1));
    }
  }
}

FlightRegistry& FlightRegistry::global() {
  static FlightRegistry* registry = new FlightRegistry();  // never destroyed
  return *registry;
}

FlightRecorder* FlightRegistry::create(const std::string& label,
                                       std::size_t capacity) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = recorders_[label];
  if (slot) {
    slot->reset();
  } else {
    slot = std::make_unique<FlightRecorder>(label, capacity);
  }
  return slot.get();
}

FlightRecorder* FlightRegistry::find(const std::string& label) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = recorders_.find(label);
  return it == recorders_.end() ? nullptr : it->second.get();
}

std::vector<std::string> FlightRegistry::labels() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> out;
  out.reserve(recorders_.size());
  for (const auto& [label, recorder] : recorders_) out.push_back(label);
  return out;  // std::map iteration is already sorted
}

void FlightRegistry::set_dump_dir(const std::string& dir) {
  std::lock_guard<std::mutex> lock(mutex_);
  dump_dir_ = dir;
}

std::string FlightRegistry::dump_dir() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return dump_dir_;
}

void FlightRegistry::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  recorders_.clear();
  dump_dir_.clear();
}

}  // namespace pbpair::obs
