// Post-mortem flight recorder: a fixed-size ring of the most recent
// per-session events, cheap enough (a few ns per record, no clock reads,
// no locks, no allocation) to leave on even in deterministic runs.
//
// Each session owns one ring and is its single writer (sessions are
// single-threaded per slice; cross-slice handoff is synchronized by the
// session manager's pool, which also orders the ring accesses). Readers —
// the `GET /flightrecorder/<session>` endpoint, the CRITICAL-transition
// dump, the fuzzer's crash handler — copy the window and re-validate
// against the head sequence so a concurrent writer can at worst make a
// just-overwritten slot disappear from the copy, never tear into it.
//
// Records carry no timestamps: the (seq, frame) pair already totally
// orders a session's events, and leaving the clock out keeps recording
// deterministic and branch-free. Dumps are JSONL, one event per line:
//   {"session":"s000","seq":12,"frame":7,"event":"fec_decision","a":2,"b":0}
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace pbpair::obs {

enum class FlightEvent : std::uint8_t {
  kFrameEncoded = 0,     // a = bytes, b = intra MBs
  kFrameDecoded,         // a = PSNR in milli-dB, b = bad pixels
  kFrameLost,            // a = packets lost, b = packets sent
  kPlrUpdate,            // a = fraction_lost (RTCP Q8), b = corrupted
  kFecDecision,          // a = repair packets sent, b = media packets
  kCrcCorruption,        // a = corrupted packets, b = packets checked
  kHealthTransition,     // a = from state, b = to state (HealthState ints)
  kFuzzCase,             // a = iteration, b = target ordinal
  kSessionShed,          // a = session slot index, b = target shard
};

/// Stable lowercase name for dumps ("frame_encoded", "plr_update", ...).
const char* flight_event_name(FlightEvent event);

struct FlightRecord {
  std::uint64_t seq = 0;  // monotonic per ring; also the overwrite witness
  std::int32_t frame = -1;
  FlightEvent event = FlightEvent::kFrameEncoded;
  std::int64_t a = 0;
  std::int64_t b = 0;
};

class FlightRecorder {
 public:
  /// `capacity` is rounded up to a power of two (default 256 events).
  explicit FlightRecorder(std::string label, std::size_t capacity = 256);

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  const std::string& label() const { return label_; }
  std::size_t capacity() const { return mask_ + 1; }

  /// Appends one event (single-writer; see file comment). A few ns: one
  /// relaxed load, four plain stores, one release store.
  void record(FlightEvent event, std::int32_t frame, std::int64_t a = 0,
              std::int64_t b = 0);

  /// Events recorded since construction/reset (not capped at capacity).
  std::uint64_t total_recorded() const {
    return head_.load(std::memory_order_acquire);
  }

  /// Copies the surviving window, oldest first. Safe against a concurrent
  /// writer: slots overwritten mid-copy are detected via their seq and
  /// dropped.
  std::vector<FlightRecord> snapshot() const;

  /// Renders snapshot() as JSONL, one object per line.
  std::string dump_jsonl() const;

  /// dump_jsonl() to a file; false when the file cannot be opened.
  bool dump_to_path(const std::string& path) const;

  /// Async-signal-safe dump to an open fd: no allocation, no locks, stack
  /// buffers and ::write only. For crash handlers (the fuzzer's SIGABRT
  /// hook); regular callers want dump_jsonl().
  void dump_unsafe(int fd) const;

  /// Forgets all events (capacity and label are kept).
  void reset() { head_.store(0, std::memory_order_release); }

 private:
  // Ring slot with atomic fields: the single writer stores them relaxed,
  // a concurrent snapshot reads them relaxed — race-free by construction,
  // with the reader's consistency restored by the seq/head re-check.
  struct Slot {
    std::atomic<std::uint64_t> seq{~std::uint64_t{0}};
    std::atomic<std::int32_t> frame{-1};
    std::atomic<std::uint8_t> event{0};
    std::atomic<std::int64_t> a{0};
    std::atomic<std::int64_t> b{0};
  };

  std::string label_;
  std::size_t mask_;
  std::unique_ptr<Slot[]> slots_;
  std::atomic<std::uint64_t> head_{0};
};

/// Process-wide label -> recorder map. Recorders are created on session
/// init and never destroyed (stable pointers, like metrics), so a ring
/// outlives its session — that is the whole point of a post-mortem tool.
/// Re-creating a label resets its ring.
class FlightRegistry {
 public:
  static FlightRegistry& global();

  /// Returns the recorder for `label`, creating (or resetting) it.
  FlightRecorder* create(const std::string& label,
                         std::size_t capacity = 256);

  /// nullptr when the label was never created.
  FlightRecorder* find(const std::string& label) const;

  /// Sorted labels of every recorder ever created.
  std::vector<std::string> labels() const;

  /// Directory for automatic CRITICAL-transition dumps
  /// (<dir>/flight_<label>.jsonl). Empty (the default) disables them.
  void set_dump_dir(const std::string& dir);
  std::string dump_dir() const;

  /// Drops every recorder and the dump dir (test isolation only — stable
  /// pointers from create() are invalidated).
  void clear();

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<FlightRecorder>> recorders_;
  std::string dump_dir_;
};

}  // namespace pbpair::obs
