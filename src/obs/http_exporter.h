// Epoll-based HTTP/1.0 responder for the telemetry endpoints, plus the
// matching one-shot client (`pbpair monitor` and tests scrape with it).
// POSIX sockets only, no dependencies, loopback by default.
//
// The exporter runs one dedicated thread driving an epoll loop over
// non-blocking sockets: N scrapers can be in flight at once, each as a
// small read->respond->write state machine, so one slow or wedged client
// never blocks the others (it gets closed at its per-connection
// deadline instead). GET only, Connection: close. Handlers run on the
// exporter thread and must only READ (the registry snapshot and health
// registry are both safe to read concurrently).
//
// When observability is enabled the exporter reports on itself:
//   obs.http.requests            counter, completed responses
//   obs.http.bytes               counter, header+body bytes written
//   obs.http.timeouts            counter, connections closed at deadline
//   obs.http.active_connections  gauge, open client connections
//   obs.http.scrape_ns           histogram, accept-to-last-byte latency
#pragma once

#include <atomic>
#include <functional>
#include <string>
#include <thread>

namespace pbpair::obs {

struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain; version=0.0.4";
  std::string body;
};

/// Maps a request path ("/metrics", "/healthz") to a response.
using HttpHandler = std::function<HttpResponse(const std::string& path)>;

struct HttpExporterOptions {
  /// Open client connections beyond this are accepted and immediately
  /// closed (cheap shed; the scraper retries).
  int max_connections = 64;
  /// A connection that has not completed its request/response within
  /// this budget is closed and counted in obs.http.timeouts.
  int slow_client_timeout_ms = 2000;
};

class HttpExporter {
 public:
  HttpExporter() = default;
  ~HttpExporter();  // stop()s

  HttpExporter(const HttpExporter&) = delete;
  HttpExporter& operator=(const HttpExporter&) = delete;

  /// Binds 127.0.0.1:`port` (0 = kernel-assigned ephemeral port) and
  /// starts the serving thread. False on bind/listen failure. The actual
  /// port is available from port() afterwards.
  bool start(int port, HttpHandler handler);
  bool start(int port, HttpHandler handler, const HttpExporterOptions& options);

  /// Stops the serving thread, closes every client connection and the
  /// listen socket. Idempotent.
  void stop();

  bool running() const { return running_.load(std::memory_order_relaxed); }
  int port() const { return port_; }

 private:
  void serve_loop();

  HttpHandler handler_;
  HttpExporterOptions options_;
  std::thread thread_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_requested_{false};
  int listen_fd_ = -1;
  int port_ = 0;
};

/// Blocking HTTP/1.0 GET http://`host`:`port``path`. Fills `*body` with
/// the response body (headers stripped) and, when non-null, `*status`
/// with the status code. False on connect/format failure.
bool http_get(const std::string& host, int port, const std::string& path,
              std::string* body, int* status = nullptr);

}  // namespace pbpair::obs
