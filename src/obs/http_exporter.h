// Minimal blocking HTTP/1.0 responder for the telemetry endpoints, plus
// the matching one-shot client (`pbpair monitor` and tests scrape with
// it). POSIX sockets only, no dependencies, loopback by default.
//
// The exporter is deliberately tiny: one dedicated thread, one connection
// at a time, GET only, Connection: close. That is exactly enough for a
// Prometheus scraper or curl, and keeps the serving path — which must
// never perturb the workload — free of thread pools and state. Handlers
// run on the exporter thread and must only READ (the registry snapshot
// and health registry are both safe to read concurrently).
#pragma once

#include <atomic>
#include <functional>
#include <string>
#include <thread>

namespace pbpair::obs {

struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain; version=0.0.4";
  std::string body;
};

/// Maps a request path ("/metrics", "/healthz") to a response.
using HttpHandler = std::function<HttpResponse(const std::string& path)>;

class HttpExporter {
 public:
  HttpExporter() = default;
  ~HttpExporter();  // stop()s

  HttpExporter(const HttpExporter&) = delete;
  HttpExporter& operator=(const HttpExporter&) = delete;

  /// Binds 127.0.0.1:`port` (0 = kernel-assigned ephemeral port) and
  /// starts the serving thread. False on bind/listen failure. The actual
  /// port is available from port() afterwards.
  bool start(int port, HttpHandler handler);

  /// Stops the serving thread and closes the socket. Idempotent.
  void stop();

  bool running() const { return running_.load(std::memory_order_relaxed); }
  int port() const { return port_; }

 private:
  void serve_loop();

  HttpHandler handler_;
  std::thread thread_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_requested_{false};
  int listen_fd_ = -1;
  int port_ = 0;
};

/// Blocking HTTP/1.0 GET http://`host`:`port``path`. Fills `*body` with
/// the response body (headers stripped) and, when non-null, `*status`
/// with the status code. False on connect/format failure.
bool http_get(const std::string& host, int port, const std::string& path,
              std::string* body, int* status = nullptr);

}  // namespace pbpair::obs
