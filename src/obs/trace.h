// Lightweight trace spans with a Chrome trace-event exporter.
//
// A ScopedSpan records (name, start, duration, thread) into a process-wide
// buffer when observability is enabled (obs/metrics.h); when disabled its
// constructor is a single relaxed load and nothing is recorded. Spans never
// influence the traced code — they only read the clock.
//
// Threads get small stable ids in first-use order plus an optional
// human-readable name (the sweep's pool workers register theirs), and the
// exporter writes one Chrome track per thread: load the file in
// chrome://tracing or https://ui.perfetto.dev.
#pragma once

#include <cstdint>
#include <string>

namespace pbpair::obs {

/// Nanoseconds on the steady clock since the first observability use in
/// this process (a stable epoch keeps trace timestamps small).
std::int64_t trace_now_ns();

/// Small dense id for the calling thread, assigned on first use.
int current_thread_id();

/// Names the calling thread's track in the exported trace (idempotent).
void set_thread_name(const std::string& name);

/// Appends one complete span. `name` must outlive the trace buffer (string
/// literals only). When `arg` >= 0 it is exported as args:{<arg_name>: arg}
/// (arg_name defaults to "i"). The buffer is bounded; spans past the cap
/// are dropped and counted in the `obs.trace.dropped` counter.
void record_span(const char* name, std::int64_t start_ns, std::int64_t dur_ns,
                 std::int64_t arg = -1, const char* arg_name = nullptr);

/// RAII span: records [construction, destruction) when enabled.
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name, std::int64_t arg = -1,
                      const char* arg_name = nullptr);
  ~ScopedSpan();

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  const char* name_;
  std::int64_t arg_;
  const char* arg_name_;
  std::int64_t start_ns_;  // < 0: disabled at construction, record nothing
};

/// Number of spans currently buffered.
std::size_t trace_span_count();

/// Overrides the bounded span-buffer capacity (default 1<<20). Existing
/// spans past a smaller cap are kept; only NEW spans are dropped (and
/// counted). Tests use a tiny cap to exercise the overflow path without
/// recording a million spans.
void set_trace_capacity(std::size_t max_spans);
std::size_t trace_capacity();

/// Drops all buffered spans (thread ids/names are kept).
void clear_trace();

/// Writes the buffered spans in Chrome trace-event JSON ("traceEvents"
/// with "X" duration events, one "M" thread_name metadata event per
/// thread). Returns false when the file cannot be opened.
bool write_chrome_trace(const std::string& path);

}  // namespace pbpair::obs
