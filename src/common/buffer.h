// Arena-backed, reference-counted immutable byte buffers for the wire path.
//
// A BufferArena owns a pool of large slabs and hands out BufferRef slices.
// Copying a BufferRef bumps an atomic refcount instead of copying bytes, and
// sub-slicing (packet payloads inside a staged frame, FEC symbols inside a
// recovered slab) shares the same allocation. Slabs recycle onto a free list
// once every allocation they host has been released, so a long-lived session
// reaches a steady state with zero heap traffic per frame.
//
// Mutation is explicit: mutable_data() / resize() / assign() unshare the
// bytes first when anyone else holds a reference (copy-on-write), which is
// what makes the fault injector's copy-on-corrupt rule safe — damaging one
// duplicated packet can never scribble on its twin.
//
// Under ASan, recycled slab memory is poisoned until re-allocated, so a
// stale BufferRef that outlives its bytes faults immediately instead of
// reading garbage. The arena destructor PB_CHECKs that no references leak.
//
// The process-wide copy ledger (ledger_copied / ledger_legacy) counts actual
// payload bytes copied by this code against the bytes the pre-arena wire
// path would have copied at the same sites; bench/wire_path asserts the
// ratio stays below 0.3.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "common/check.h"

namespace pbpair::common {

class BufferArena;
class BufferRef;

namespace internal {

struct Slab;

// Lives at the head of every allocation inside a slab. All BufferRefs that
// slice one allocation share this header; when refs hits zero the slab's
// live-allocation count drops, and when that hits zero the slab recycles.
struct RangeHeader {
  std::atomic<std::uint32_t> refs;
  std::uint32_t capacity;  // usable bytes following this header
  Slab* slab;
};

struct Slab {
  std::unique_ptr<std::uint8_t[]> memory;
  std::size_t size = 0;
  std::size_t used = 0;
  std::atomic<std::uint32_t> live{0};  // allocations with refs outstanding
  BufferArena* arena = nullptr;
};

void release_range(RangeHeader* header);

}  // namespace internal

// Process-wide ledger of payload bytes copied on the wire path. "copied"
// counts memcpy work the arena code actually performs; "legacy" is bumped at
// the historical copy sites with the bytes the pre-arena code would have
// copied there, so copied/legacy measures the zero-copy win directly.
struct CopyLedgerSnapshot {
  std::uint64_t copied_bytes = 0;
  std::uint64_t legacy_bytes = 0;
};

void ledger_copied(std::uint64_t bytes);
void ledger_legacy(std::uint64_t bytes);
CopyLedgerSnapshot copy_ledger();
void reset_copy_ledger();

// A slab-pool allocator for BufferRefs. allocate() bump-allocates from the
// current slab under a mutex; releases are lock-free until the last
// reference on a slab, which re-locks to push it onto the free list. One
// arena per StreamSession keeps sessions independent; scratch() is a
// never-destroyed process-wide arena for code with no session context
// (tests, conversions from std::vector).
class BufferArena {
 public:
  static constexpr std::size_t kDefaultSlabBytes = 64 * 1024;

  explicit BufferArena(std::size_t slab_bytes = kDefaultSlabBytes);
  ~BufferArena();  // PB_CHECKs that no BufferRef outlives the arena

  BufferArena(const BufferArena&) = delete;
  BufferArena& operator=(const BufferArena&) = delete;

  // Returns a writable, exclusively-owned ref of `size` uninitialized
  // bytes. Size zero returns an empty ref with no backing allocation.
  BufferRef allocate(std::size_t size);

  // allocate() + memcpy; the copy is charged to the ledger.
  BufferRef copy(const std::uint8_t* data, std::size_t size);

  // Process-wide arena that is never destroyed (intentionally leaked, like
  // the obs registry) so refs created from temporaries stay valid for the
  // life of the process.
  static BufferArena& scratch();

  struct Stats {
    std::uint64_t slabs_created = 0;
    std::uint64_t slabs_recycled = 0;
    std::uint64_t allocations = 0;
    std::uint64_t bytes_allocated = 0;
  };
  Stats stats() const;

  // Number of allocations whose references are still live, across all
  // slabs. Zero once every BufferRef has been destroyed.
  std::uint64_t live_allocations() const;

 private:
  friend void internal::release_range(internal::RangeHeader*);

  void maybe_recycle(internal::Slab* slab);

  mutable std::mutex mutex_;
  std::size_t slab_bytes_;
  std::vector<std::unique_ptr<internal::Slab>> slabs_;
  std::vector<internal::Slab*> free_;
  internal::Slab* current_ = nullptr;
  Stats stats_;
};

// A shared, slice-able view of bytes inside a BufferArena allocation.
// Copying shares (refcount bump); slicing shares; mutation unshares first.
// The API mirrors the std::vector<std::uint8_t> surface the wire path used
// before the arena refactor so call sites stay idiomatic.
class BufferRef {
 public:
  BufferRef() = default;

  // Implicit conversion from a byte vector copies into the scratch arena.
  // Kept implicit on purpose: tests and cold paths keep building payloads
  // as vectors, and the copy is charged to the ledger.
  BufferRef(const std::vector<std::uint8_t>& bytes);  // NOLINT
  BufferRef(const std::uint8_t* data, std::size_t size);

  BufferRef(const BufferRef& other);
  BufferRef& operator=(const BufferRef& other);
  BufferRef(BufferRef&& other) noexcept;
  BufferRef& operator=(BufferRef&& other) noexcept;
  ~BufferRef();

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  const std::uint8_t* data() const { return data_; }
  const std::uint8_t* begin() const { return data_; }
  const std::uint8_t* end() const { return data_ + size_; }
  std::uint8_t operator[](std::size_t i) const {
    PB_DCHECK(i < size_);
    return data_[i];
  }

  // Writable pointer to the bytes. If any other BufferRef shares the
  // allocation, the bytes are first copied into a fresh exclusive
  // allocation (copy-on-write); otherwise this is free.
  std::uint8_t* mutable_data();

  // Shrinking narrows the view in place; growing reallocates (unshared)
  // and zero-fills the tail, matching std::vector::resize semantics.
  void resize(std::size_t new_size);

  void assign(std::size_t count, std::uint8_t value);
  template <typename It>
  void assign(It first, It last) {
    assign_bytes(&*first, static_cast<std::size_t>(last - first));
  }
  void clear();

  // Appends `other`'s bytes. When `other` directly continues this ref
  // inside the same allocation (packetizer continuation slices of one
  // staged frame) the view just widens — zero bytes move.
  void append(const BufferRef& other);

  // Returns a ref sharing this allocation, viewing [offset, offset+len).
  BufferRef slice(std::size_t offset, std::size_t len) const;

  bool operator==(const BufferRef& other) const;
  bool operator!=(const BufferRef& other) const { return !(*this == other); }
  bool operator==(const std::vector<std::uint8_t>& v) const;
  bool operator!=(const std::vector<std::uint8_t>& v) const {
    return !(*this == v);
  }

  std::vector<std::uint8_t> to_vector() const {
    return std::vector<std::uint8_t>(data_, data_ + size_);
  }

  // True when both refs share one allocation (test hook for the zero-copy
  // guarantees).
  bool shares_storage_with(const BufferRef& other) const {
    return hdr_ != nullptr && hdr_ == other.hdr_;
  }

 private:
  friend class BufferArena;

  BufferRef(internal::RangeHeader* hdr, std::uint8_t* data, std::size_t size)
      : hdr_(hdr), data_(data), size_(size) {}

  void assign_bytes(const std::uint8_t* data, std::size_t size);
  void unshare(std::size_t keep, std::size_t new_size);
  BufferArena& home_arena() const;
  void release();

  internal::RangeHeader* hdr_ = nullptr;
  std::uint8_t* data_ = nullptr;
  std::size_t size_ = 0;
};

inline bool operator==(const std::vector<std::uint8_t>& v,
                       const BufferRef& ref) {
  return ref == v;
}
inline bool operator!=(const std::vector<std::uint8_t>& v,
                       const BufferRef& ref) {
  return !(ref == v);
}

}  // namespace pbpair::common
