// Minimal JSON parser for the tooling layer (bench-report regression
// checks, trace/metrics validation in tests).
//
// Supports the full JSON value grammar with one deliberate simplification:
// numbers are stored as double (every number this repo emits — ns timings,
// counters up to 2^53 — survives the round trip). Container nesting is
// capped at 256 levels so hostile documents ("[[[[...") parse-fail instead
// of exhausting the stack. No serialization here;
// writers in this repo emit JSON directly so their formatting stays under
// their control (json_escape below keeps the strings they embed valid).
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

namespace pbpair::common {

class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  /// Parses `text` as one JSON document (trailing whitespace allowed).
  /// On failure returns false and, when `error` is non-null, a message
  /// with the byte offset of the problem.
  static bool parse(const std::string& text, JsonValue* out,
                    std::string* error = nullptr);

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  bool as_bool(bool fallback = false) const {
    return is_bool() ? bool_ : fallback;
  }
  double as_number(double fallback = 0.0) const {
    return is_number() ? number_ : fallback;
  }
  const std::string& as_string() const { return string_; }

  /// Array access; size() is 0 for non-arrays/objects.
  std::size_t size() const {
    return is_array() ? array_.size() : (is_object() ? object_.size() : 0);
  }
  const JsonValue& at(std::size_t i) const { return array_[i]; }

  /// Object member lookup; nullptr when absent or not an object.
  const JsonValue* find(const std::string& key) const;

  /// Convenience: find(key)->as_number(fallback) tolerating absence.
  double number_at(const std::string& key, double fallback) const;
  const std::string& string_at(const std::string& key) const;

  const std::map<std::string, JsonValue>& members() const { return object_; }
  const std::vector<JsonValue>& items() const { return array_; }

 private:
  friend class JsonParser;

  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::map<std::string, JsonValue> object_;
};

/// Parses the entire contents of the file at `path`. Returns false on I/O
/// or parse failure (with `error` describing which).
bool parse_json_file(const std::string& path, JsonValue* out,
                     std::string* error = nullptr);

/// Escapes `text` for embedding inside a JSON string literal: quotes,
/// backslashes, and control characters become \" \\ \n \t ... \u00XX.
/// The writers in this repo (trace exporter, structured log, healthz)
/// route every externally-sourced name through this.
std::string json_escape(const std::string& text);

}  // namespace pbpair::common
