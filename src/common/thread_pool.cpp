#include "common/thread_pool.h"

#include <atomic>
#include <cstdlib>

namespace pbpair::common {

int default_thread_count() {
  if (const char* env = std::getenv("PBPAIR_THREADS")) {
    int n = std::atoi(env);
    if (n >= 1) return n;
  }
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

ThreadPool::ThreadPool(int threads) {
  if (threads < 1) threads = 1;
  workers_.reserve(static_cast<std::size_t>(threads));
  for (int i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  wait_all();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  task_ready_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  task_ready_.notify_one();
}

void ThreadPool::wait_all() {
  std::unique_lock<std::mutex> lock(mutex_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      task_ready_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (--in_flight_ == 0) all_done_.notify_all();
    }
  }
}

void parallel_for(std::size_t count, int threads,
                  const std::function<void(std::size_t)>& body) {
  if (threads <= 0) threads = default_thread_count();
  if (count <= 1 || threads == 1) {
    for (std::size_t i = 0; i < count; ++i) body(i);
    return;
  }
  if (static_cast<std::size_t>(threads) > count) {
    threads = static_cast<int>(count);
  }
  // One atomic work index instead of one queue entry per item: tasks are
  // coarse (whole pipeline runs), so contention is negligible.
  std::atomic<std::size_t> next{0};
  ThreadPool pool(threads);
  for (int t = 0; t < threads; ++t) {
    pool.submit([&next, count, &body] {
      for (;;) {
        std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= count) return;
        body(i);
      }
    });
  }
  pool.wait_all();
}

}  // namespace pbpair::common
