#include "common/json.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace pbpair::common {

namespace {
const std::string kEmptyString;
}  // namespace

class JsonParser {
 public:
  JsonParser(const std::string& text, std::string* error)
      : text_(text), error_(error) {}

  bool parse_document(JsonValue* out) {
    skip_whitespace();
    if (!parse_value(out)) return false;
    skip_whitespace();
    if (pos_ != text_.size()) return fail("trailing content");
    return true;
  }

 private:
  bool fail(const char* message) {
    if (error_ != nullptr) {
      char buf[128];
      std::snprintf(buf, sizeof(buf), "%s at offset %zu", message, pos_);
      *error_ = buf;
    }
    return false;
  }

  void skip_whitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool parse_value(JsonValue* out) {
    if (pos_ >= text_.size()) return fail("unexpected end of input");
    // Hostile input like "[[[[[..." recurses once per nesting level;
    // bound it so parsing is stack-safe on any byte sequence (the fuzz
    // harness feeds this parser adversarial documents).
    if (depth_ >= kMaxDepth) return fail("nesting too deep");
    switch (text_[pos_]) {
      case '{': return parse_object(out);
      case '[': return parse_array(out);
      case '"': {
        out->kind_ = JsonValue::Kind::kString;
        return parse_string(&out->string_);
      }
      case 't':
        if (text_.compare(pos_, 4, "true") == 0) {
          pos_ += 4;
          out->kind_ = JsonValue::Kind::kBool;
          out->bool_ = true;
          return true;
        }
        return fail("bad literal");
      case 'f':
        if (text_.compare(pos_, 5, "false") == 0) {
          pos_ += 5;
          out->kind_ = JsonValue::Kind::kBool;
          out->bool_ = false;
          return true;
        }
        return fail("bad literal");
      case 'n':
        if (text_.compare(pos_, 4, "null") == 0) {
          pos_ += 4;
          out->kind_ = JsonValue::Kind::kNull;
          return true;
        }
        return fail("bad literal");
      default: return parse_number(out);
    }
  }

  bool parse_object(JsonValue* out) {
    ++pos_;  // '{'
    ++depth_;
    const DepthGuard guard(this);
    out->kind_ = JsonValue::Kind::kObject;
    skip_whitespace();
    if (consume('}')) return true;
    while (true) {
      skip_whitespace();
      std::string key;
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return fail("expected object key");
      }
      if (!parse_string(&key)) return false;
      skip_whitespace();
      if (!consume(':')) return fail("expected ':'");
      skip_whitespace();
      JsonValue value;
      if (!parse_value(&value)) return false;
      out->object_.emplace(std::move(key), std::move(value));
      skip_whitespace();
      if (consume(',')) continue;
      if (consume('}')) return true;
      return fail("expected ',' or '}'");
    }
  }

  bool parse_array(JsonValue* out) {
    ++pos_;  // '['
    ++depth_;
    const DepthGuard guard(this);
    out->kind_ = JsonValue::Kind::kArray;
    skip_whitespace();
    if (consume(']')) return true;
    while (true) {
      skip_whitespace();
      JsonValue value;
      if (!parse_value(&value)) return false;
      out->array_.push_back(std::move(value));
      skip_whitespace();
      if (consume(',')) continue;
      if (consume(']')) return true;
      return fail("expected ',' or ']'");
    }
  }

  bool parse_string(std::string* out) {
    ++pos_;  // '"'
    out->clear();
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) return fail("bad escape");
        char esc = text_[pos_];
        switch (esc) {
          case '"': out->push_back('"'); break;
          case '\\': out->push_back('\\'); break;
          case '/': out->push_back('/'); break;
          case 'b': out->push_back('\b'); break;
          case 'f': out->push_back('\f'); break;
          case 'n': out->push_back('\n'); break;
          case 'r': out->push_back('\r'); break;
          case 't': out->push_back('\t'); break;
          case 'u': {
            if (pos_ + 4 >= text_.size()) return fail("bad \\u escape");
            unsigned code = 0;
            for (int i = 1; i <= 4; ++i) {
              char h = text_[pos_ + i];
              if (!std::isxdigit(static_cast<unsigned char>(h))) {
                return fail("bad \\u escape");
              }
              code = code * 16 +
                     (std::isdigit(static_cast<unsigned char>(h))
                          ? static_cast<unsigned>(h - '0')
                          : static_cast<unsigned>(
                                std::tolower(static_cast<unsigned char>(h)) -
                                'a' + 10));
            }
            pos_ += 4;
            // UTF-8 encode the BMP code point (surrogate pairs are not
            // combined; this repo never emits them).
            if (code < 0x80) {
              out->push_back(static_cast<char>(code));
            } else if (code < 0x800) {
              out->push_back(static_cast<char>(0xC0 | (code >> 6)));
              out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
            } else {
              out->push_back(static_cast<char>(0xE0 | (code >> 12)));
              out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
              out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
            }
            break;
          }
          default: return fail("bad escape");
        }
        ++pos_;
        continue;
      }
      out->push_back(c);
      ++pos_;
    }
    return fail("unterminated string");
  }

  bool parse_number(JsonValue* out) {
    const char* start = text_.c_str() + pos_;
    char* end = nullptr;
    double value = std::strtod(start, &end);
    if (end == start) return fail("expected value");
    pos_ += static_cast<std::size_t>(end - start);
    out->kind_ = JsonValue::Kind::kNumber;
    out->number_ = value;
    return true;
  }

  // RAII depth decrement so every early return inside the container
  // parsers unwinds the nesting count correctly.
  struct DepthGuard {
    explicit DepthGuard(JsonParser* p) : parser(p) {}
    ~DepthGuard() { --parser->depth_; }
    JsonParser* parser;
  };
  static constexpr int kMaxDepth = 256;

  const std::string& text_;
  std::string* error_;
  std::size_t pos_ = 0;
  int depth_ = 0;
};

bool JsonValue::parse(const std::string& text, JsonValue* out,
                      std::string* error) {
  *out = JsonValue();
  JsonParser parser(text, error);
  return parser.parse_document(out);
}

const JsonValue* JsonValue::find(const std::string& key) const {
  if (!is_object()) return nullptr;
  auto it = object_.find(key);
  return it == object_.end() ? nullptr : &it->second;
}

double JsonValue::number_at(const std::string& key, double fallback) const {
  const JsonValue* v = find(key);
  return v == nullptr ? fallback : v->as_number(fallback);
}

const std::string& JsonValue::string_at(const std::string& key) const {
  const JsonValue* v = find(key);
  return v == nullptr || !v->is_string() ? kEmptyString : v->as_string();
}

bool parse_json_file(const std::string& path, JsonValue* out,
                     std::string* error) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    if (error != nullptr) *error = "cannot open " + path;
    return false;
  }
  std::string text;
  char buf[4096];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) text.append(buf, n);
  std::fclose(f);
  return JsonValue::parse(text, out, error);
}

std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (unsigned char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

}  // namespace pbpair::common
