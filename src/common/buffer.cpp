// Slab-pool arena and reference-counted buffer slices (see buffer.h).
#include "common/buffer.h"

#include <cstring>

#if defined(__SANITIZE_ADDRESS__)
#define PBPAIR_ASAN 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define PBPAIR_ASAN 1
#endif
#endif

#if defined(PBPAIR_ASAN)
#include <sanitizer/asan_interface.h>
#define PB_POISON(ptr, size) __asan_poison_memory_region((ptr), (size))
#define PB_UNPOISON(ptr, size) __asan_unpoison_memory_region((ptr), (size))
#else
#define PB_POISON(ptr, size) ((void)0)
#define PB_UNPOISON(ptr, size) ((void)0)
#endif

namespace pbpair::common {
namespace {

std::atomic<std::uint64_t> g_copied_bytes{0};
std::atomic<std::uint64_t> g_legacy_bytes{0};

constexpr std::size_t kAlign = alignof(internal::RangeHeader);

std::size_t align_up(std::size_t n) { return (n + kAlign - 1) & ~(kAlign - 1); }

}  // namespace

void ledger_copied(std::uint64_t bytes) {
  g_copied_bytes.fetch_add(bytes, std::memory_order_relaxed);
}

void ledger_legacy(std::uint64_t bytes) {
  g_legacy_bytes.fetch_add(bytes, std::memory_order_relaxed);
}

CopyLedgerSnapshot copy_ledger() {
  CopyLedgerSnapshot snapshot;
  snapshot.copied_bytes = g_copied_bytes.load(std::memory_order_relaxed);
  snapshot.legacy_bytes = g_legacy_bytes.load(std::memory_order_relaxed);
  return snapshot;
}

void reset_copy_ledger() {
  g_copied_bytes.store(0, std::memory_order_relaxed);
  g_legacy_bytes.store(0, std::memory_order_relaxed);
}

namespace internal {

// Drops one reference; on the allocation's last release decrements the
// slab's live count and, when the slab fully drains, offers it back to the
// arena's free list. Lock-free except for that final hand-back.
void release_range(RangeHeader* header) {
  if (header->refs.fetch_sub(1, std::memory_order_acq_rel) != 1) {
    return;
  }
  Slab* slab = header->slab;
  if (slab->live.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    slab->arena->maybe_recycle(slab);
  }
}

}  // namespace internal

BufferArena::BufferArena(std::size_t slab_bytes)
    : slab_bytes_(slab_bytes < 1024 ? 1024 : slab_bytes) {}

BufferArena::~BufferArena() {
  // A BufferRef outliving its arena would be a dangling view; fail loudly.
  PB_CHECK(live_allocations() == 0);
  for (const std::unique_ptr<internal::Slab>& slab : slabs_) {
    PB_UNPOISON(slab->memory.get(), slab->size);
  }
}

BufferArena& BufferArena::scratch() {
  // Intentionally leaked: refs created from temporaries (vector
  // conversions in tests and cold paths) stay valid for process lifetime.
  static BufferArena* arena = new BufferArena();
  return *arena;
}

void BufferArena::maybe_recycle(internal::Slab* slab) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (slab == current_ || slab->used == 0 ||
      slab->live.load(std::memory_order_acquire) != 0) {
    return;
  }
  slab->used = 0;
  PB_POISON(slab->memory.get(), slab->size);
  free_.push_back(slab);
  ++stats_.slabs_recycled;
}

BufferRef BufferArena::allocate(std::size_t size) {
  if (size == 0) {
    return BufferRef();
  }
  const std::size_t need = align_up(sizeof(internal::RangeHeader) + size);
  std::lock_guard<std::mutex> lock(mutex_);
  if (current_ == nullptr || current_->used + need > current_->size) {
    // Retire the current slab; if everything in it already released, it
    // can go straight back to the free list.
    if (current_ != nullptr && current_->used > 0 &&
        current_->live.load(std::memory_order_acquire) == 0) {
      current_->used = 0;
      PB_POISON(current_->memory.get(), current_->size);
      free_.push_back(current_);
      ++stats_.slabs_recycled;
    }
    current_ = nullptr;
    for (std::size_t i = 0; i < free_.size(); ++i) {
      if (free_[i]->size >= need) {
        current_ = free_[i];
        free_[i] = free_.back();
        free_.pop_back();
        break;
      }
    }
    if (current_ == nullptr) {
      auto slab = std::make_unique<internal::Slab>();
      slab->size = need > slab_bytes_ ? need : slab_bytes_;
      slab->memory = std::make_unique<std::uint8_t[]>(slab->size);
      slab->arena = this;
      PB_POISON(slab->memory.get(), slab->size);
      current_ = slab.get();
      slabs_.push_back(std::move(slab));
      ++stats_.slabs_created;
    }
  }
  std::uint8_t* base = current_->memory.get() + current_->used;
  current_->used += need;
  current_->live.fetch_add(1, std::memory_order_relaxed);
  ++stats_.allocations;
  stats_.bytes_allocated += size;
  PB_UNPOISON(base, sizeof(internal::RangeHeader) + size);
  auto* header = new (base) internal::RangeHeader;
  header->refs.store(1, std::memory_order_relaxed);
  header->capacity = static_cast<std::uint32_t>(size);
  header->slab = current_;
  return BufferRef(header, base + sizeof(internal::RangeHeader), size);
}

BufferRef BufferArena::copy(const std::uint8_t* data, std::size_t size) {
  BufferRef ref = allocate(size);
  if (size > 0) {
    std::memcpy(ref.mutable_data(), data, size);
    ledger_copied(size);
  }
  return ref;
}

BufferArena::Stats BufferArena::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

std::uint64_t BufferArena::live_allocations() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::uint64_t live = 0;
  for (const std::unique_ptr<internal::Slab>& slab : slabs_) {
    live += slab->live.load(std::memory_order_acquire);
  }
  return live;
}

BufferRef::BufferRef(const std::vector<std::uint8_t>& bytes) {
  if (!bytes.empty()) {
    *this = BufferArena::scratch().copy(bytes.data(), bytes.size());
  }
}

BufferRef::BufferRef(const std::uint8_t* data, std::size_t size) {
  if (size > 0) {
    *this = BufferArena::scratch().copy(data, size);
  }
}

BufferRef::BufferRef(const BufferRef& other)
    : hdr_(other.hdr_), data_(other.data_), size_(other.size_) {
  if (hdr_ != nullptr) {
    hdr_->refs.fetch_add(1, std::memory_order_relaxed);
  }
}

BufferRef& BufferRef::operator=(const BufferRef& other) {
  if (this == &other) {
    return *this;
  }
  if (other.hdr_ != nullptr) {
    other.hdr_->refs.fetch_add(1, std::memory_order_relaxed);
  }
  release();
  hdr_ = other.hdr_;
  data_ = other.data_;
  size_ = other.size_;
  return *this;
}

BufferRef::BufferRef(BufferRef&& other) noexcept
    : hdr_(other.hdr_), data_(other.data_), size_(other.size_) {
  other.hdr_ = nullptr;
  other.data_ = nullptr;
  other.size_ = 0;
}

BufferRef& BufferRef::operator=(BufferRef&& other) noexcept {
  if (this == &other) {
    return *this;
  }
  release();
  hdr_ = other.hdr_;
  data_ = other.data_;
  size_ = other.size_;
  other.hdr_ = nullptr;
  other.data_ = nullptr;
  other.size_ = 0;
  return *this;
}

BufferRef::~BufferRef() { release(); }

void BufferRef::release() {
  if (hdr_ != nullptr) {
    internal::release_range(hdr_);
    hdr_ = nullptr;
  }
  data_ = nullptr;
  size_ = 0;
}

BufferArena& BufferRef::home_arena() const {
  return hdr_ != nullptr ? *hdr_->slab->arena : BufferArena::scratch();
}

// Replaces the backing storage with a fresh exclusive allocation of
// `new_size` bytes, preserving the first `keep` bytes of the current view.
void BufferRef::unshare(std::size_t keep, std::size_t new_size) {
  BufferArena& arena = home_arena();
  BufferRef fresh = arena.allocate(new_size);
  if (keep > 0) {
    std::memcpy(fresh.data_, data_, keep);
    ledger_copied(keep);
  }
  *this = std::move(fresh);
}

std::uint8_t* BufferRef::mutable_data() {
  if (hdr_ == nullptr) {
    return nullptr;
  }
  if (hdr_->refs.load(std::memory_order_acquire) != 1) {
    unshare(size_, size_);
  }
  return data_;
}

void BufferRef::resize(std::size_t new_size) {
  if (new_size <= size_) {
    size_ = new_size;  // narrow the view; bytes stay shared
    return;
  }
  const std::uint8_t* base =
      hdr_ != nullptr
          ? reinterpret_cast<const std::uint8_t*>(hdr_ + 1)
          : nullptr;
  const bool exclusive =
      hdr_ != nullptr && hdr_->refs.load(std::memory_order_acquire) == 1;
  if (exclusive &&
      static_cast<std::size_t>(data_ - base) + new_size <= hdr_->capacity) {
    std::memset(data_ + size_, 0, new_size - size_);
    size_ = new_size;
    return;
  }
  const std::size_t keep = size_;
  unshare(keep, new_size);
  std::memset(data_ + keep, 0, new_size - keep);
}

void BufferRef::assign(std::size_t count, std::uint8_t value) {
  clear();
  resize(count);
  if (count > 0) {
    std::memset(data_, value, count);
  }
}

void BufferRef::clear() { release(); }

void BufferRef::assign_bytes(const std::uint8_t* data, std::size_t size) {
  if (size == 0) {
    release();
    return;
  }
  // Guard against assigning from our own storage before we release it.
  if (hdr_ != nullptr && data >= reinterpret_cast<std::uint8_t*>(hdr_ + 1) &&
      data < reinterpret_cast<std::uint8_t*>(hdr_ + 1) + hdr_->capacity) {
    const std::vector<std::uint8_t> tmp(data, data + size);
    release();
    *this = home_arena().copy(tmp.data(), tmp.size());
    return;
  }
  BufferArena& arena = home_arena();
  release();
  *this = arena.copy(data, size);
}

void BufferRef::append(const BufferRef& other) {
  if (other.empty()) {
    return;
  }
  if (empty()) {
    *this = other;  // share, zero copy
    return;
  }
  if (hdr_ != nullptr && hdr_ == other.hdr_ &&
      data_ + size_ == other.data_) {
    size_ += other.size_;  // contiguous continuation: just widen the view
    return;
  }
  const std::uint8_t* base = reinterpret_cast<const std::uint8_t*>(hdr_ + 1);
  const std::size_t old_size = size_;  // unshare() resets size_ to `grown`
  const std::size_t grown = old_size + other.size_;
  const bool exclusive = hdr_->refs.load(std::memory_order_acquire) == 1;
  if (!(exclusive &&
        static_cast<std::size_t>(data_ - base) + grown <= hdr_->capacity)) {
    unshare(old_size, grown);
  }
  std::memcpy(data_ + old_size, other.data_, other.size_);
  ledger_copied(other.size_);
  size_ = grown;
}

BufferRef BufferRef::slice(std::size_t offset, std::size_t len) const {
  PB_CHECK(offset + len <= size_);
  if (len == 0) {
    return BufferRef();
  }
  hdr_->refs.fetch_add(1, std::memory_order_relaxed);
  return BufferRef(hdr_, data_ + offset, len);
}

bool BufferRef::operator==(const BufferRef& other) const {
  return size_ == other.size_ &&
         (size_ == 0 || std::memcmp(data_, other.data_, size_) == 0);
}

bool BufferRef::operator==(const std::vector<std::uint8_t>& v) const {
  return size_ == v.size() &&
         (size_ == 0 || std::memcmp(data_, v.data(), size_) == 0);
}

}  // namespace pbpair::common
