// Bounded lock-free multi-producer/multi-consumer queue (Vyukov's array
// queue): a power-of-two ring of cells, each carrying a sequence number
// that encodes whether the cell is free to write or ready to read. Both
// try_push and try_pop are one CAS on the respective position counter in
// the uncontended case; neither ever blocks, allocates, or takes a lock.
//
// The sharded session engine (sim/session_manager.cpp) keeps one of these
// per shard as its run queue of session slots: workers pop from their own
// shard and steal from a neighbour's only when theirs drains. Capacity is
// fixed at construction — a full queue rejects the push, which is exactly
// the backpressure signal admission control consumes.
//
// Determinism note: the queue orders *scheduling*, never results. Every
// value this repo routes through it addresses a self-contained session, so
// pop order (and therefore contention) cannot change one output byte.
#pragma once

#include <atomic>
#include <cstddef>
#include <memory>
#include <utility>

#include "common/check.h"

namespace pbpair::common {

template <typename T>
class MpmcQueue {
 public:
  /// `capacity` is rounded up to a power of two (>= 2).
  explicit MpmcQueue(std::size_t capacity) {
    std::size_t cap = 2;
    while (cap < capacity) cap <<= 1;
    mask_ = cap - 1;
    cells_ = std::make_unique<Cell[]>(cap);
    for (std::size_t i = 0; i < cap; ++i) {
      cells_[i].seq.store(i, std::memory_order_relaxed);
    }
  }

  MpmcQueue(const MpmcQueue&) = delete;
  MpmcQueue& operator=(const MpmcQueue&) = delete;

  std::size_t capacity() const { return mask_ + 1; }

  /// False when the queue is full (the value is NOT consumed).
  bool try_push(T value) {
    Cell* cell;
    std::size_t pos = head_.load(std::memory_order_relaxed);
    for (;;) {
      cell = &cells_[pos & mask_];
      const std::size_t seq = cell->seq.load(std::memory_order_acquire);
      const std::ptrdiff_t diff = static_cast<std::ptrdiff_t>(seq) -
                                  static_cast<std::ptrdiff_t>(pos);
      if (diff == 0) {
        // Cell is free at our ticket; claim the position.
        if (head_.compare_exchange_weak(pos, pos + 1,
                                        std::memory_order_relaxed)) {
          break;
        }
      } else if (diff < 0) {
        return false;  // full: the cell still holds a value a lap behind
      } else {
        pos = head_.load(std::memory_order_relaxed);  // lost the race
      }
    }
    cell->value = std::move(value);
    cell->seq.store(pos + 1, std::memory_order_release);
    return true;
  }

  /// False when the queue is empty.
  bool try_pop(T* out) {
    PB_DCHECK(out != nullptr);
    Cell* cell;
    std::size_t pos = tail_.load(std::memory_order_relaxed);
    for (;;) {
      cell = &cells_[pos & mask_];
      const std::size_t seq = cell->seq.load(std::memory_order_acquire);
      const std::ptrdiff_t diff = static_cast<std::ptrdiff_t>(seq) -
                                  static_cast<std::ptrdiff_t>(pos + 1);
      if (diff == 0) {
        if (tail_.compare_exchange_weak(pos, pos + 1,
                                        std::memory_order_relaxed)) {
          break;
        }
      } else if (diff < 0) {
        return false;  // empty: the producer has not filled this cell yet
      } else {
        pos = tail_.load(std::memory_order_relaxed);
      }
    }
    *out = std::move(cell->value);
    cell->seq.store(pos + mask_ + 1, std::memory_order_release);
    return true;
  }

  /// Racy size estimate — monitoring and admission watermarks only, never
  /// a correctness signal (by the time the caller acts, it may be stale).
  std::size_t size_approx() const {
    const std::size_t head = head_.load(std::memory_order_relaxed);
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    return head >= tail ? head - tail : 0;
  }

 private:
  struct Cell {
    std::atomic<std::size_t> seq{0};
    T value{};
  };

  // Head (producers) and tail (consumers) sit on their own cache lines so
  // pushers and poppers do not false-share one counter.
  static constexpr std::size_t kCacheLine = 64;
  std::size_t mask_ = 0;
  std::unique_ptr<Cell[]> cells_;
  alignas(kCacheLine) std::atomic<std::size_t> head_{0};
  alignas(kCacheLine) std::atomic<std::size_t> tail_{0};
};

}  // namespace pbpair::common
