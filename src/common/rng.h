// Deterministic pseudo-random number generation.
//
// Every stochastic component in the library (sequence generators, loss
// models) takes an explicit seed and derives its stream from these
// generators, so that a given experiment configuration always produces
// bit-identical results. We implement our own small generators instead of
// using <random> engines because the standard does not guarantee identical
// streams across library implementations, and reproducibility across
// machines is a core requirement for the benchmark harness.
#pragma once

#include <cstdint>

namespace pbpair::common {

/// SplitMix64: used for seeding and cheap hash-style mixing.
/// Reference: Steele, Lea, Flood — "Fast Splittable Pseudorandom Number
/// Generators", OOPSLA 2014.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// PCG32 (pcg-xsh-rr-64-32): the workhorse generator.
/// Reference: O'Neill — "PCG: A Family of Simple Fast Space-Efficient
/// Statistically Good Algorithms for Random Number Generation", 2014.
class Pcg32 {
 public:
  /// Seeds state and stream-selector; two generators with different
  /// `stream` values are statistically independent even with equal seeds.
  explicit Pcg32(std::uint64_t seed, std::uint64_t stream = 0x1234567890ABCDEFULL);

  /// Uniform 32-bit value.
  std::uint32_t next_u32();

  /// Uniform value in [0, bound) without modulo bias. bound must be > 0.
  std::uint32_t next_below(std::uint32_t bound);

  /// Uniform value in [lo, hi] inclusive. Requires lo <= hi.
  std::int32_t next_in_range(std::int32_t lo, std::int32_t hi);

  /// Uniform double in [0, 1).
  double next_double();

  /// Bernoulli trial with probability p (clamped to [0,1]).
  bool next_bernoulli(double p);

 private:
  std::uint64_t state_;
  std::uint64_t inc_;
};

}  // namespace pbpair::common
