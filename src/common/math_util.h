// Small integer math helpers shared by the codec and simulation layers.
#pragma once

#include <cstdint>

namespace pbpair::common {

template <typename T>
constexpr T clamp(T v, T lo, T hi) {
  return v < lo ? lo : (v > hi ? hi : v);
}

/// Clamps to the 8-bit pixel range.
constexpr std::uint8_t clamp_pixel(int v) {
  return static_cast<std::uint8_t>(v < 0 ? 0 : (v > 255 ? 255 : v));
}

/// Integer division rounding up; b must be positive.
constexpr int ceil_div(int a, int b) { return (a + b - 1) / b; }

/// abs() that is safe for INT_MIN-free codec ranges.
constexpr int iabs(int v) { return v < 0 ? -v : v; }

/// Integer square root (floor), for metrics on integer accumulators.
constexpr std::uint32_t isqrt(std::uint64_t v) {
  std::uint64_t lo = 0, hi = 0xFFFFFFFFULL;
  while (lo < hi) {
    std::uint64_t mid = (lo + hi + 1) >> 1;
    if (mid * mid <= v) {
      lo = mid;
    } else {
      hi = mid - 1;
    }
  }
  return static_cast<std::uint32_t>(lo);
}

}  // namespace pbpair::common
