// Minimal command-line flag parser for the tools and examples.
//
// Supports `--name value`, `--name=value`, boolean `--name`, and
// positional arguments. No registration step: callers query by name after
// parsing, and unknown-flag detection is explicit via `unknown_flags()`.
#pragma once

#include <cstdlib>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace pbpair::common {

class ArgParser {
 public:
  ArgParser(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg.rfind("--", 0) == 0) {
        std::string body = arg.substr(2);
        auto eq = body.find('=');
        if (eq != std::string::npos) {
          flags_[body.substr(0, eq)] = body.substr(eq + 1);
        } else if (i + 1 < argc && argv[i + 1][0] != '-') {
          flags_[body] = argv[++i];
        } else {
          flags_[body] = "";  // boolean flag
        }
      } else {
        positional_.push_back(std::move(arg));
      }
    }
  }

  bool has(const std::string& name) const {
    consumed_.insert(name);
    return flags_.count(name) > 0;
  }

  std::string get(const std::string& name,
                  const std::string& fallback = "") const {
    consumed_.insert(name);
    auto it = flags_.find(name);
    return it == flags_.end() ? fallback : it->second;
  }

  double get_double(const std::string& name, double fallback) const {
    auto it = flags_.find(name);
    consumed_.insert(name);
    return it == flags_.end() || it->second.empty()
               ? fallback
               : std::atof(it->second.c_str());
  }

  int get_int(const std::string& name, int fallback) const {
    auto it = flags_.find(name);
    consumed_.insert(name);
    return it == flags_.end() || it->second.empty()
               ? fallback
               : std::atoi(it->second.c_str());
  }

  const std::vector<std::string>& positional() const { return positional_; }

  /// Flags that were provided but never queried (typo detection).
  std::vector<std::string> unknown_flags() const {
    std::vector<std::string> unknown;
    for (const auto& [name, value] : flags_) {
      (void)value;
      if (consumed_.count(name) == 0) unknown.push_back(name);
    }
    return unknown;
  }

 private:
  std::map<std::string, std::string> flags_;
  std::vector<std::string> positional_;
  mutable std::set<std::string> consumed_;
};

}  // namespace pbpair::common
