// Q16 fixed-point probability arithmetic.
//
// The paper targets FPU-less PDAs (iPAQ H5555 / Zaurus SL-5600, XScale
// PXA255-class cores), and states the H.263 implementation uses fixed-point
// arithmetic throughout. The probability-of-correctness machinery therefore
// runs on unsigned Q16: value 0x0000'0000 == 0.0, 0x0001'0000 == 1.0.
// Probabilities never exceed 1.0, so products of two Q16 probabilities fit
// comfortably in 64-bit intermediates.
#pragma once

#include <cstdint>

#include "common/check.h"

namespace pbpair::common {

/// Q16 unsigned fixed-point value in [0, 1].
using Q16 = std::uint32_t;

inline constexpr Q16 kQ16One = 1u << 16;

/// Converts a double in [0,1] to Q16 (round-to-nearest, clamped).
constexpr Q16 q16_from_double(double v) {
  if (v <= 0.0) return 0;
  if (v >= 1.0) return kQ16One;
  return static_cast<Q16>(v * static_cast<double>(kQ16One) + 0.5);
}

/// Converts Q16 back to double (exact).
constexpr double q16_to_double(Q16 v) {
  return static_cast<double>(v) / static_cast<double>(kQ16One);
}

/// Q16 product of two probabilities; result stays in [0,1] if inputs do.
constexpr Q16 q16_mul(Q16 a, Q16 b) {
  return static_cast<Q16>(
      (static_cast<std::uint64_t>(a) * static_cast<std::uint64_t>(b)) >> 16);
}

/// Saturating Q16 addition, capped at 1.0 (probabilities only).
constexpr Q16 q16_add_sat(Q16 a, Q16 b) {
  std::uint64_t s = static_cast<std::uint64_t>(a) + b;
  return s > kQ16One ? kQ16One : static_cast<Q16>(s);
}

/// 1.0 - v. Requires v <= 1.0 in Q16.
constexpr Q16 q16_complement(Q16 v) {
  return v > kQ16One ? 0 : kQ16One - v;
}

/// Ratio a/b as Q16, clamped to [0,1]. Returns 1.0 for b == 0 by convention
/// (used for similarity factors where a zero denominator means "identical").
constexpr Q16 q16_ratio_clamped(std::uint64_t a, std::uint64_t b) {
  if (b == 0) return kQ16One;
  if (a >= b) return kQ16One;
  return static_cast<Q16>((a << 16) / b);
}

}  // namespace pbpair::common
