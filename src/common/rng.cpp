#include "common/rng.h"

#include "common/check.h"

namespace pbpair::common {

Pcg32::Pcg32(std::uint64_t seed, std::uint64_t stream) {
  // Standard PCG32 seeding sequence: mix the seed through SplitMix64 so
  // that small consecutive seeds still give well-separated states.
  SplitMix64 mixer(seed);
  inc_ = (stream << 1u) | 1u;
  state_ = 0u;
  (void)next_u32();
  state_ += mixer.next();
  (void)next_u32();
}

std::uint32_t Pcg32::next_u32() {
  std::uint64_t old = state_;
  state_ = old * 6364136223846793005ULL + inc_;
  auto xorshifted = static_cast<std::uint32_t>(((old >> 18u) ^ old) >> 27u);
  auto rot = static_cast<std::uint32_t>(old >> 59u);
  return (xorshifted >> rot) | (xorshifted << ((32u - rot) & 31u));
}

std::uint32_t Pcg32::next_below(std::uint32_t bound) {
  PB_CHECK(bound > 0);
  // Lemire-style rejection to avoid modulo bias.
  std::uint32_t threshold = (0u - bound) % bound;
  for (;;) {
    std::uint32_t r = next_u32();
    if (r >= threshold) return r % bound;
  }
}

std::int32_t Pcg32::next_in_range(std::int32_t lo, std::int32_t hi) {
  PB_CHECK(lo <= hi);
  std::uint32_t span =
      static_cast<std::uint32_t>(static_cast<std::int64_t>(hi) - lo + 1);
  return lo + static_cast<std::int32_t>(next_below(span));
}

double Pcg32::next_double() {
  // 53 random bits scaled into [0,1).
  std::uint64_t hi = next_u32();
  std::uint64_t lo = next_u32();
  std::uint64_t bits = ((hi << 21) ^ lo) & ((1ULL << 53) - 1);
  return static_cast<double>(bits) * (1.0 / 9007199254740992.0);
}

bool Pcg32::next_bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return next_double() < p;
}

}  // namespace pbpair::common
