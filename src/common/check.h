// Invariant-checking macros used across the PBPAIR library.
//
// PB_CHECK fires in all build types: codec state corruption must never be
// silently carried forward into an encoded bitstream, so the cost of the
// branch is accepted even in release builds. PB_DCHECK compiles away unless
// PBPAIR_DEBUG_CHECKS is defined and is meant for hot inner loops.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace pbpair::common {

[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line) {
  std::fprintf(stderr, "PB_CHECK failed: %s at %s:%d\n", expr, file, line);
  std::abort();
}

}  // namespace pbpair::common

#define PB_CHECK(expr)                                              \
  do {                                                              \
    if (!(expr)) {                                                  \
      ::pbpair::common::check_failed(#expr, __FILE__, __LINE__);    \
    }                                                               \
  } while (false)

#define PB_CHECK_MSG(expr, msg)                                     \
  do {                                                              \
    if (!(expr)) {                                                  \
      ::pbpair::common::check_failed(msg, __FILE__, __LINE__);      \
    }                                                               \
  } while (false)

#if defined(PBPAIR_DEBUG_CHECKS)
#define PB_DCHECK(expr) PB_CHECK(expr)
#else
#define PB_DCHECK(expr) \
  do {                  \
  } while (false)
#endif
