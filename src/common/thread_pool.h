// A small fixed-size worker pool for fanning out independent simulation
// runs (see sim/parallel_sweep.h). Determinism contract: the pool imposes
// no ordering of its own — callers make each task self-contained (own RNG,
// own output slot) so results are identical at any thread count.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace pbpair::common {

/// Worker threads from the PBPAIR_THREADS environment variable when set
/// (clamped to >= 1), otherwise std::thread::hardware_concurrency().
int default_thread_count();

class ThreadPool {
 public:
  /// Spawns `threads` workers (clamped to >= 1).
  explicit ThreadPool(int threads);

  /// Drains the queue, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int size() const { return static_cast<int>(workers_.size()); }

  /// Enqueues a task. Tasks must not throw (the codec aborts via PB_CHECK
  /// on invariant failure; anything else would tear down the process
  /// anyway).
  void submit(std::function<void()> task);

  /// Blocks until every submitted task has finished.
  void wait_all();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable task_ready_;
  std::condition_variable all_done_;
  std::size_t in_flight_ = 0;  // queued + running
  bool stopping_ = false;
};

/// Runs body(0..count-1) across `threads` workers (<= 0 selects
/// default_thread_count()). Serial fast path when either is 1. Blocks
/// until every index has completed. Index assignment order is unspecified;
/// bodies must be independent.
void parallel_for(std::size_t count, int threads,
                  const std::function<void(std::size_t)>& body);

}  // namespace pbpair::common
