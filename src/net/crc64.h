// CRC64 (ECMA-182 polynomial, reflected — the CRC-64/XZ parameterization)
// with a slice-by-8 table kernel: eight 256-entry tables let the hot loop
// fold 8 input bytes per iteration instead of 1, which keeps per-packet
// integrity checking cheap enough to leave on for every wire frame.
//
// The streaming API (init/update/final) exists so callers can checksum a
// packet's header and payload without materializing the concatenated wire
// image — the zero-copy serialize and FEC symbol paths feed disjoint slices
// through one running state.
#pragma once

#include <cstddef>
#include <cstdint>

namespace pbpair::net {

// ECMA-182 generator polynomial, bit-reflected.
inline constexpr std::uint64_t kCrc64Poly = 0xC96C5795D7870F42ULL;

using Crc64State = std::uint64_t;

inline constexpr Crc64State crc64_init() { return ~0ULL; }

// Folds `size` bytes into the running state. Chain over disjoint slices.
Crc64State crc64_update(Crc64State state, const std::uint8_t* data,
                        std::size_t size);

inline constexpr std::uint64_t crc64_final(Crc64State state) {
  return ~state;
}

// One-shot convenience over a contiguous buffer.
inline std::uint64_t crc64(const std::uint8_t* data, std::size_t size) {
  return crc64_final(crc64_update(crc64_init(), data, size));
}

}  // namespace pbpair::net
