// Wire-path buffer types. The implementation lives in common/buffer.h so
// the codec layer (GobSpan payloads) can use the same arena without a
// dependency cycle (pbpair_net links pbpair_codec, not the other way
// around); this header gives net code its idiomatic spelling.
#pragma once

#include "common/buffer.h"

namespace pbpair::net {

using BufferArena = common::BufferArena;
using BufferRef = common::BufferRef;

}  // namespace pbpair::net
