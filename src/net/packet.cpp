#include "net/packet.h"

#include "common/check.h"

namespace pbpair::net {
namespace {

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v & 0xFF));
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v >> 24));
  out.push_back(static_cast<std::uint8_t>((v >> 16) & 0xFF));
  out.push_back(static_cast<std::uint8_t>((v >> 8) & 0xFF));
  out.push_back(static_cast<std::uint8_t>(v & 0xFF));
}

std::uint16_t get_u16(const std::uint8_t* p) {
  return static_cast<std::uint16_t>((p[0] << 8) | p[1]);
}

std::uint32_t get_u32(const std::uint8_t* p) {
  return (static_cast<std::uint32_t>(p[0]) << 24) |
         (static_cast<std::uint32_t>(p[1]) << 16) |
         (static_cast<std::uint32_t>(p[2]) << 8) | p[3];
}

constexpr std::uint8_t kRtpVersion = 2;

}  // namespace

std::size_t Packet::wire_size() const {
  return kHeaderWireSize + payload.size();
}

std::vector<std::uint8_t> serialize_packet(const Packet& packet) {
  std::vector<std::uint8_t> wire;
  wire.reserve(packet.wire_size());
  // Byte 0: V(2)=2, P=0, X=0, CC=0. Byte 1: M(1), PT(7).
  wire.push_back(kRtpVersion << 6);
  wire.push_back(static_cast<std::uint8_t>(
      (packet.header.marker ? 0x80 : 0) | (packet.header.payload_type & 0x7F)));
  put_u16(wire, packet.header.sequence);
  put_u32(wire, packet.header.timestamp);
  put_u32(wire, packet.header.ssrc);
  // Payload header: frame_type, qp, first_gob, num_gobs.
  wire.push_back(packet.header.frame_type);
  wire.push_back(packet.header.qp);
  wire.push_back(packet.header.first_gob);
  wire.push_back(packet.header.num_gobs);
  wire.insert(wire.end(), packet.payload.begin(), packet.payload.end());
  return wire;
}

bool parse_packet(const std::vector<std::uint8_t>& wire, Packet* packet) {
  if (wire.size() < kHeaderWireSize) return false;
  if ((wire[0] >> 6) != kRtpVersion) return false;
  const std::uint8_t payload_type = wire[1] & 0x7F;
  if (payload_type != kPayloadTypeH263 && payload_type != kPayloadTypeFec) {
    return false;
  }
  packet->header.payload_type = payload_type;
  packet->header.marker = (wire[1] & 0x80) != 0;
  packet->header.sequence = get_u16(&wire[2]);
  packet->header.timestamp = get_u32(&wire[4]);
  packet->header.ssrc = get_u32(&wire[8]);
  packet->header.frame_type = wire[12];
  packet->header.qp = wire[13];
  packet->header.first_gob = wire[14];
  packet->header.num_gobs = wire[15];
  packet->payload.assign(wire.begin() + kHeaderWireSize, wire.end());
  return true;
}

}  // namespace pbpair::net
