#include "net/packet.h"

#include "common/check.h"
#include "net/crc64.h"

namespace pbpair::net {
namespace {

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v & 0xFF));
}

std::uint16_t get_u16(const std::uint8_t* p) {
  return static_cast<std::uint16_t>((p[0] << 8) | p[1]);
}

std::uint32_t get_u32(const std::uint8_t* p) {
  return (static_cast<std::uint32_t>(p[0]) << 24) |
         (static_cast<std::uint32_t>(p[1]) << 16) |
         (static_cast<std::uint32_t>(p[2]) << 8) | p[3];
}

std::uint64_t get_u64(const std::uint8_t* p) {
  return (static_cast<std::uint64_t>(get_u32(p)) << 32) | get_u32(p + 4);
}

constexpr std::uint8_t kRtpVersion = 2;
constexpr std::uint8_t kExtensionBit = 0x10;  // X: CRC64 trailer present

// Shared field decode for all parse entry points. Returns the end of the
// payload region (size minus any verified trailer) or 0 on malformed
// input.
std::size_t parse_common(const std::uint8_t* wire, std::size_t size,
                         Packet* packet, bool expect_crc) {
  if (size < kHeaderWireSize) return 0;
  if ((wire[0] >> 6) != kRtpVersion) return 0;
  const std::uint8_t payload_type = wire[1] & 0x7F;
  if (payload_type != kPayloadTypeH263 && payload_type != kPayloadTypeFec) {
    return 0;
  }
  packet->header.payload_type = payload_type;
  packet->header.marker = (wire[1] & 0x80) != 0;
  packet->header.sequence = get_u16(&wire[2]);
  packet->header.timestamp = get_u32(&wire[4]);
  packet->header.ssrc = get_u32(&wire[8]);
  packet->header.frame_type = wire[12];
  packet->header.qp = wire[13];
  packet->header.first_gob = wire[14];
  packet->header.num_gobs = wire[15];
  packet->crc_present = false;
  packet->crc_ok = true;
  std::size_t payload_end = size;
  if (expect_crc && (wire[0] & kExtensionBit) != 0) {
    packet->crc_present = true;
    if (size >= kHeaderWireSize + kCrcTrailerSize) {
      payload_end = size - kCrcTrailerSize;
      packet->crc_ok =
          crc64(wire, payload_end) == get_u64(wire + payload_end);
    } else {
      packet->crc_ok = false;  // trailer truncated away in flight
    }
  }
  return payload_end;
}

}  // namespace

std::size_t Packet::wire_size() const {
  return kHeaderWireSize + payload.size() +
         (crc_present ? kCrcTrailerSize : 0);
}

void serialize_header(const Packet& packet,
                      std::uint8_t out[kHeaderWireSize]) {
  // Byte 0: V(2)=2, P=0, X=crc_present, CC=0. Byte 1: M(1), PT(7).
  out[0] = static_cast<std::uint8_t>(
      (kRtpVersion << 6) | (packet.crc_present ? kExtensionBit : 0));
  out[1] = static_cast<std::uint8_t>((packet.header.marker ? 0x80 : 0) |
                                     (packet.header.payload_type & 0x7F));
  out[2] = static_cast<std::uint8_t>(packet.header.sequence >> 8);
  out[3] = static_cast<std::uint8_t>(packet.header.sequence & 0xFF);
  out[4] = static_cast<std::uint8_t>(packet.header.timestamp >> 24);
  out[5] = static_cast<std::uint8_t>((packet.header.timestamp >> 16) & 0xFF);
  out[6] = static_cast<std::uint8_t>((packet.header.timestamp >> 8) & 0xFF);
  out[7] = static_cast<std::uint8_t>(packet.header.timestamp & 0xFF);
  out[8] = static_cast<std::uint8_t>(packet.header.ssrc >> 24);
  out[9] = static_cast<std::uint8_t>((packet.header.ssrc >> 16) & 0xFF);
  out[10] = static_cast<std::uint8_t>((packet.header.ssrc >> 8) & 0xFF);
  out[11] = static_cast<std::uint8_t>(packet.header.ssrc & 0xFF);
  out[12] = packet.header.frame_type;
  out[13] = packet.header.qp;
  out[14] = packet.header.first_gob;
  out[15] = packet.header.num_gobs;
}

std::uint64_t packet_crc64(const Packet& packet) {
  std::uint8_t header[kHeaderWireSize];
  serialize_header(packet, header);
  Crc64State state = crc64_update(crc64_init(), header, kHeaderWireSize);
  state = crc64_update(state, packet.payload.data(), packet.payload.size());
  return crc64_final(state);
}

std::vector<std::uint8_t> serialize_packet(const Packet& packet) {
  std::vector<std::uint8_t> wire;
  wire.reserve(packet.wire_size());
  wire.resize(kHeaderWireSize);
  serialize_header(packet, wire.data());
  wire.insert(wire.end(), packet.payload.begin(), packet.payload.end());
  if (packet.crc_present) {
    const std::uint64_t crc = crc64(wire.data(), wire.size());
    put_u16(wire, static_cast<std::uint16_t>(crc >> 48));
    put_u16(wire, static_cast<std::uint16_t>((crc >> 32) & 0xFFFF));
    put_u16(wire, static_cast<std::uint16_t>((crc >> 16) & 0xFFFF));
    put_u16(wire, static_cast<std::uint16_t>(crc & 0xFFFF));
  }
  return wire;
}

bool parse_packet(const std::uint8_t* wire, std::size_t size, Packet* packet,
                  bool expect_crc) {
  const std::size_t payload_end = parse_common(wire, size, packet, expect_crc);
  if (payload_end == 0) return false;
  packet->payload = BufferArena::scratch().copy(
      wire + kHeaderWireSize, payload_end - kHeaderWireSize);
  return true;
}

bool parse_packet(const std::vector<std::uint8_t>& wire, Packet* packet,
                  bool expect_crc) {
  return parse_packet(wire.data(), wire.size(), packet, expect_crc);
}

bool parse_packet_ref(const BufferRef& wire, Packet* packet,
                      bool expect_crc) {
  const std::size_t payload_end =
      parse_common(wire.data(), wire.size(), packet, expect_crc);
  if (payload_end == 0) return false;
  packet->payload =
      wire.slice(kHeaderWireSize, payload_end - kHeaderWireSize);
  return true;
}

}  // namespace pbpair::net
