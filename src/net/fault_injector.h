// Deterministic adversarial fault injection for the packet stream.
//
// The loss models (net/loss_model.h) only ever DROP packets; real networks
// also deliver damaged ones — flipped bits, truncated payloads, corrupted
// headers, duplicates, and reordered bursts. FaultInjector models that
// damage as a seeded, composable channel stage: it sits between the lossy
// channel and the depacketizer (StreamSession inserts it after "transmit"
// when PipelineConfig::faults is set) and rewrites the delivered packet
// vector at the WIRE level — each fault serializes the packet, damages the
// bytes, and re-parses them, so a corruption that breaks the RTP framing
// drops the packet exactly like a real receiver would.
//
// Every fault class has an independent per-packet probability and all
// randomness comes from one PCG32 stream, so a (seed, packet sequence)
// pair always produces the same damage — failures found by `pbpair fuzz`
// or a flaky soak run replay exactly. With all probabilities zero the
// injector is never constructed and the pipeline is byte-identical to a
// build without it (tests/test_fault_injector.cpp).
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "net/packet.h"

namespace pbpair::net {

struct FaultInjectorConfig {
  std::uint64_t seed = 1;

  // Per-packet probabilities, each drawn independently (a packet can be
  // duplicated AND bit-flipped). All zero == injector disabled.
  double p_bit_flip = 0.0;        // flip 1..max_bit_flips random payload bits
  double p_truncate = 0.0;        // cut the payload at a random length
  double p_header_corrupt = 0.0;  // XOR one random byte of the wire header
  double p_duplicate = 0.0;       // deliver the packet twice
  double p_reorder = 0.0;         // swap the packet with its successor

  int max_bit_flips = 8;          // bits flipped per bit-flip event (1..N)

  /// Re-parse damaged wire bytes with CRC verification (set by the
  /// session when WireConfig::crc is on). Purely a parse-side flag: it
  /// changes no RNG draw, so seeded damage replays identically with or
  /// without CRC framing.
  bool expect_crc = false;

  bool enabled() const {
    return p_bit_flip > 0.0 || p_truncate > 0.0 || p_header_corrupt > 0.0 ||
           p_duplicate > 0.0 || p_reorder > 0.0;
  }
};

/// Damage bookkeeping, mirrored into obs counters (net.fault.*) when the
/// metrics layer is on so `pbpair monitor` can show live damage rates.
struct FaultStats {
  std::uint64_t packets_seen = 0;
  std::uint64_t bits_flipped = 0;          // individual bits, not events
  std::uint64_t payloads_truncated = 0;
  std::uint64_t headers_corrupted = 0;
  std::uint64_t packets_duplicated = 0;
  std::uint64_t packets_reordered = 0;     // adjacent swaps performed
  std::uint64_t packets_dropped_unparseable = 0;  // damage broke RTP framing
};

class FaultInjector {
 public:
  explicit FaultInjector(const FaultInjectorConfig& config);

  /// Damages one frame's delivered packets in transmission order. The
  /// returned vector may be shorter (framing-destroying corruption drops
  /// the packet), longer (duplication), or reordered.
  std::vector<Packet> apply(std::vector<Packet> packets);

  const FaultStats& stats() const { return stats_; }
  const FaultInjectorConfig& config() const { return config_; }

  /// Restores the seeded RNG and clears stats (replays identically).
  void reset();

 private:
  /// Applies byte-level damage to one packet; returns false when the
  /// damage made the wire bytes unparseable (caller drops the packet).
  bool damage_packet(Packet* packet);

  FaultInjectorConfig config_;
  common::Pcg32 rng_;
  FaultStats stats_;
};

}  // namespace pbpair::net
