#include "net/fault_injector.h"

#include "obs/metrics.h"

namespace pbpair::net {
namespace {

// RNG stream selector: keeps the injector's draws independent of every
// other consumer seeded from the same experiment seed.
constexpr std::uint64_t kFaultStream = 0xFA01'7D05'2005'0001ULL;

}  // namespace

// Per-site cached-handle counter bump: the function-local static resolves
// the name once, then add() is a lock-free bump on the calling thread's
// shard. A macro so each expansion gets its own static (a shared helper
// would redo the registry map lookup on every call).
#define PB_BUMP(name, n)                                     \
  do {                                                       \
    const std::uint64_t pb_bump_n_ = (n);                    \
    if (pb_bump_n_ > 0 && obs::enabled()) {                  \
      static obs::Counter* pb_bump_c_ = &obs::counter(name); \
      pb_bump_c_->add(pb_bump_n_);                           \
    }                                                        \
  } while (0)

FaultInjector::FaultInjector(const FaultInjectorConfig& config)
    : config_(config), rng_(config.seed, kFaultStream) {}

void FaultInjector::reset() {
  rng_ = common::Pcg32(config_.seed, kFaultStream);
  stats_ = FaultStats{};
}

bool FaultInjector::damage_packet(Packet* packet) {
  const bool corrupt_header = rng_.next_bernoulli(config_.p_header_corrupt);
  const bool flip_bits = rng_.next_bernoulli(config_.p_bit_flip);
  const bool truncate = rng_.next_bernoulli(config_.p_truncate);
  if (!corrupt_header && !flip_bits && !truncate) return true;

  // Copy-on-corrupt: only a packet actually selected for damage gets its
  // bytes materialized (and re-parsed into fresh storage below), so a
  // duplicated twin sharing the same payload ref is never scribbled on.
  std::vector<std::uint8_t> wire = serialize_packet(*packet);
  common::ledger_copied(packet->payload.size());
  common::ledger_legacy(packet->payload.size());
  std::uint64_t bits_flipped = 0;
  std::uint64_t headers_corrupted = 0;
  std::uint64_t payloads_truncated = 0;

  if (corrupt_header) {
    const std::uint32_t byte = rng_.next_below(kHeaderWireSize);
    const std::uint8_t mask =
        static_cast<std::uint8_t>(1 + rng_.next_below(255));
    wire[byte] ^= mask;
    ++headers_corrupted;
  }
  if (flip_bits && wire.size() > kHeaderWireSize) {
    const int flips = 1 + static_cast<int>(rng_.next_below(static_cast<
        std::uint32_t>(config_.max_bit_flips < 1 ? 1 : config_.max_bit_flips)));
    const std::uint32_t payload_bits =
        static_cast<std::uint32_t>((wire.size() - kHeaderWireSize) * 8);
    for (int i = 0; i < flips; ++i) {
      const std::uint32_t bit = rng_.next_below(payload_bits);
      wire[kHeaderWireSize + bit / 8] ^=
          static_cast<std::uint8_t>(1u << (bit % 8));
      ++bits_flipped;
    }
  }
  if (truncate) {
    // Cut anywhere from an empty wire buffer to one byte short: header
    // truncation models a mangled datagram, payload truncation a cut GOB.
    const std::size_t keep = rng_.next_below(
        static_cast<std::uint32_t>(wire.size()));
    wire.resize(keep);
    ++payloads_truncated;
  }

  stats_.bits_flipped += bits_flipped;
  stats_.headers_corrupted += headers_corrupted;
  stats_.payloads_truncated += payloads_truncated;
  PB_BUMP("net.fault.bits_flipped", bits_flipped);
  PB_BUMP("net.fault.headers_corrupted", headers_corrupted);
  PB_BUMP("net.fault.payloads_truncated", payloads_truncated);

  Packet damaged;
  common::ledger_legacy(wire.size() > kHeaderWireSize
                            ? wire.size() - kHeaderWireSize
                            : 0);
  if (!parse_packet(wire, &damaged, config_.expect_crc)) {
    stats_.packets_dropped_unparseable += 1;
    PB_BUMP("net.fault.dropped_unparseable", 1);
    return false;
  }
  *packet = std::move(damaged);
  return true;
}

std::vector<Packet> FaultInjector::apply(std::vector<Packet> packets) {
  std::vector<Packet> out;
  out.reserve(packets.size() + 2);
  for (Packet& packet : packets) {
    stats_.packets_seen += 1;
    const bool duplicate = rng_.next_bernoulli(config_.p_duplicate);
    if (!damage_packet(&packet)) continue;
    if (duplicate) {
      stats_.packets_duplicated += 1;
      PB_BUMP("net.fault.packets_duplicated", 1);
      common::ledger_legacy(packet.payload.size());
      out.push_back(packet);  // twin shares the payload ref
    }
    out.push_back(std::move(packet));
  }
  // Reordering pass: each packet may swap with its successor. Done on the
  // post-damage vector so duplicates can be displaced too.
  for (std::size_t i = 0; i + 1 < out.size(); ++i) {
    if (rng_.next_bernoulli(config_.p_reorder)) {
      std::swap(out[i], out[i + 1]);
      stats_.packets_reordered += 1;
      PB_BUMP("net.fault.packets_reordered", 1);
    }
  }
  return out;
}

}  // namespace pbpair::net
