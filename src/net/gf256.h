// GF(256) field arithmetic for the packet-level erasure code (net/fec.h).
//
// The field is GF(2^8) with the AES-adjacent primitive polynomial
// x^8 + x^4 + x^3 + x^2 + 1 (0x11D) and generator 2: every nonzero element
// is 2^i for some i in [0, 254], so multiplication and division reduce to
// one addition/subtraction of logarithms modulo 255 plus two table lookups
// — the classic log/exp construction. Addition is XOR (characteristic 2),
// which is why XOR parity is exactly the m=1 special case of the
// Reed–Solomon code built on top of this field.
//
// The tables are built at compile time (constexpr), so the arithmetic is
// available in every build mode with no init-order concerns, and the
// hot-path region helper (gf256_addmul) is a plain byte loop the compiler
// auto-vectorizes — repair windows are a few KB, nowhere near the codec
// kernels on the profile.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

namespace pbpair::net {

namespace gf256_detail {

inline constexpr std::uint32_t kPoly = 0x11D;  // x^8+x^4+x^3+x^2+1

struct Tables {
  // exp_ is doubled so gf256_mul can index log[a]+log[b] (max 508)
  // without reducing modulo 255 first.
  std::array<std::uint8_t, 510> exp_{};
  std::array<std::uint8_t, 256> log_{};
};

constexpr Tables build_tables() {
  Tables t{};
  std::uint32_t x = 1;
  for (int i = 0; i < 255; ++i) {
    t.exp_[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(x);
    t.exp_[static_cast<std::size_t>(i) + 255] = static_cast<std::uint8_t>(x);
    t.log_[x] = static_cast<std::uint8_t>(i);
    x <<= 1;
    if (x & 0x100) x ^= kPoly;
  }
  t.log_[0] = 0;  // log(0) is undefined; callers must branch on zero
  return t;
}

inline constexpr Tables kTables = build_tables();

}  // namespace gf256_detail

/// a * b in GF(256).
inline std::uint8_t gf256_mul(std::uint8_t a, std::uint8_t b) {
  if (a == 0 || b == 0) return 0;
  const auto& t = gf256_detail::kTables;
  return t.exp_[static_cast<std::size_t>(t.log_[a]) + t.log_[b]];
}

/// Multiplicative inverse of a (a != 0).
inline std::uint8_t gf256_inv(std::uint8_t a) {
  const auto& t = gf256_detail::kTables;
  return t.exp_[255 - t.log_[a]];
}

/// a / b in GF(256) (b != 0).
inline std::uint8_t gf256_div(std::uint8_t a, std::uint8_t b) {
  if (a == 0) return 0;
  const auto& t = gf256_detail::kTables;
  return t.exp_[static_cast<std::size_t>(t.log_[a]) + 255 - t.log_[b]];
}

/// Generator power 2^i (i reduced modulo 255).
inline std::uint8_t gf256_exp(unsigned i) {
  return gf256_detail::kTables.exp_[i % 255];
}

/// dst[i] ^= c * src[i] for i in [0, len) — the row operation both the
/// encoder (building repair symbols) and the decoder (Gaussian
/// elimination on received symbols) are made of.
void gf256_addmul(std::uint8_t* dst, const std::uint8_t* src, std::uint8_t c,
                  std::size_t len);

/// dst[i] = c * dst[i] for i in [0, len).
void gf256_scale(std::uint8_t* dst, std::uint8_t c, std::size_t len);

}  // namespace pbpair::net
