// The lossy channel: applies a loss model to a packet stream and keeps
// transmission statistics (sent/dropped counts, payload bytes — the bytes
// feed the transmit-energy model).
#pragma once

#include <cstdint>
#include <vector>

#include "net/loss_model.h"
#include "net/packet.h"

namespace pbpair::obs {
class Counter;
}

namespace pbpair::net {

struct ChannelStats {
  std::uint64_t packets_sent = 0;
  std::uint64_t packets_dropped = 0;
  std::uint64_t bytes_sent = 0;     // wire bytes offered to the channel
  std::uint64_t bytes_delivered = 0;

  double loss_rate() const {
    return packets_sent == 0
               ? 0.0
               : static_cast<double>(packets_dropped) / packets_sent;
  }
};

class Channel {
 public:
  /// `loss` must outlive the channel.
  explicit Channel(LossModel* loss);

  /// Transmits packets in order; returns those that survived.
  std::vector<Packet> transmit(const std::vector<Packet>& packets);

  const ChannelStats& stats() const { return stats_; }
  void reset();

 private:
  LossModel* loss_;
  ChannelStats stats_;
  // Cached handle for the per-model drop counter (the name depends on
  // loss_->name(), so it cannot be a function-local static). Looked up
  // once; each add() then lands lock-free on the calling thread's shard.
  obs::Counter* drop_counter_ = nullptr;
};

}  // namespace pbpair::net
