#include "net/gf256.h"

namespace pbpair::net {

void gf256_addmul(std::uint8_t* dst, const std::uint8_t* src, std::uint8_t c,
                  std::size_t len) {
  if (c == 0) return;
  if (c == 1) {
    for (std::size_t i = 0; i < len; ++i) dst[i] ^= src[i];
    return;
  }
  // Hoist the log of the constant; the per-byte work is then one lookup
  // chain the compiler unrolls. A 256-entry row table would be faster
  // still, but repair windows are small enough that this never shows up
  // next to the codec kernels.
  const auto& t = gf256_detail::kTables;
  const std::size_t log_c = t.log_[c];
  for (std::size_t i = 0; i < len; ++i) {
    const std::uint8_t s = src[i];
    if (s != 0) dst[i] ^= t.exp_[log_c + t.log_[s]];
  }
}

void gf256_scale(std::uint8_t* dst, std::uint8_t c, std::size_t len) {
  if (c == 1) return;
  if (c == 0) {
    for (std::size_t i = 0; i < len; ++i) dst[i] = 0;
    return;
  }
  const auto& t = gf256_detail::kTables;
  const std::size_t log_c = t.log_[c];
  for (std::size_t i = 0; i < len; ++i) {
    const std::uint8_t s = dst[i];
    if (s != 0) dst[i] = t.exp_[log_c + t.log_[s]];
  }
}

}  // namespace pbpair::net
