#include "net/feedback.h"

#include "common/check.h"

namespace pbpair::net {

PlrEstimator::PlrEstimator(int window) : window_(window) {
  PB_CHECK(window >= 1);
}

void PlrEstimator::push(bool lost) {
  events_.push_back(lost);
  if (lost) ++lost_in_window_;
  while (static_cast<int>(events_.size()) > window_) {
    if (events_.front()) --lost_in_window_;
    events_.pop_front();
  }
}

void PlrEstimator::on_packet_received(std::uint16_t sequence) {
  if (have_last_) {
    // Sequence arithmetic mod 2^16; anything other than +1 is a gap.
    std::uint16_t expected = static_cast<std::uint16_t>(last_sequence_ + 1);
    std::uint16_t gap = static_cast<std::uint16_t>(sequence - expected);
    // Treat absurd gaps (reordering/wrap glitches) as zero rather than
    // flooding the window.
    if (gap < 1000) {
      for (std::uint16_t i = 0; i < gap; ++i) {
        push(true);
        ++lost_;
      }
    }
  }
  push(false);
  ++received_;
  last_sequence_ = sequence;
  have_last_ = true;
}

void PlrEstimator::on_known_loss(int count) {
  PB_CHECK(count >= 0);
  for (int i = 0; i < count; ++i) {
    push(true);
    ++lost_;
  }
  // Known losses advance the expected sequence too.
  last_sequence_ = static_cast<std::uint16_t>(last_sequence_ + count);
}

double PlrEstimator::estimate() const {
  if (events_.empty()) return 0.0;
  return static_cast<double>(lost_in_window_) /
         static_cast<double>(events_.size());
}

void PlrEstimator::reset() {
  events_.clear();
  lost_in_window_ = 0;
  have_last_ = false;
  last_sequence_ = 0;
  received_ = 0;
  lost_ = 0;
}

}  // namespace pbpair::net
