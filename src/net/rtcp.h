// Minimal RTCP receiver reports (RFC 3550 RR subset).
//
// The paper's §3.2/§5 extension needs "proper interfacing mechanisms
// between the codec and the network": the receiver periodically reports its
// measured loss back to the sender, which feeds PBPAIR's α and the
// Intra_Th controller. This implements the wire format for that feedback
// path — fraction lost, cumulative lost, highest sequence received — so the
// examples exercise a realistic loop instead of telepathy.
#pragma once

#include <cstdint>
#include <vector>

#include "net/feedback.h"

namespace pbpair::net {

struct ReceiverReport {
  std::uint32_t reporter_ssrc = 0;
  std::uint32_t reportee_ssrc = 0;
  /// Fraction of packets lost since the previous report, as the RFC's
  /// fixed-point u8 (loss_fraction / 256). When CRC framing is on this is
  /// the UNUSABLE-packet fraction — wire losses plus packets dropped as
  /// corrupted — because both appear as sequence gaps to the estimator;
  /// it is the erasure rate the FEC window must survive.
  std::uint8_t fraction_lost = 0;
  /// Cumulative packets lost (24-bit in the RFC; we keep 32).
  std::uint32_t cumulative_lost = 0;
  std::uint16_t highest_sequence = 0;

  /// Corruption split (CRC wire format only): the portion of the interval
  /// loss that was CRC-verified corruption rather than true wire loss,
  /// same u8/256 fixed point. Zero when CRC framing is off, which keeps
  /// the serialized report byte-identical to the pre-CRC layout.
  std::uint8_t fraction_corrupted = 0;
  std::uint32_t cumulative_corrupted = 0;

  double fraction_lost_as_double() const {
    return static_cast<double>(fraction_lost) / 256.0;
  }
  double fraction_corrupted_as_double() const {
    return static_cast<double>(fraction_corrupted) / 256.0;
  }
};

/// Serializes to the RFC 3550 RR layout (8-byte header + 1 report block;
/// jitter/LSR/DLSR fields are zero — we do not model timing). A nonzero
/// corruption split appends one 8-byte profile-specific extension word
/// pair [fraction_corrupted u8 | cumulative_corrupted u24 | reserved u32]
/// and bumps the RTCP length field accordingly; an all-zero split emits
/// the classic 32-byte report.
std::vector<std::uint8_t> serialize_receiver_report(const ReceiverReport& rr);

/// Parses a serialized report. Returns false on malformed input.
bool parse_receiver_report(const std::vector<std::uint8_t>& wire,
                           ReceiverReport* rr);

/// Builds a report from the estimator state. `since_last` resets the
/// per-interval loss fraction bookkeeping (call with the same estimator
/// between reports).
class ReceiverReportBuilder {
 public:
  ReceiverReportBuilder(std::uint32_t reporter_ssrc,
                        std::uint32_t reportee_ssrc)
      : reporter_ssrc_(reporter_ssrc), reportee_ssrc_(reportee_ssrc) {}

  /// Snapshot the estimator into a report; interval fraction is computed
  /// against the previous snapshot. `corrupted_interval` is the number of
  /// CRC-failed packets the receiver dropped since the last report (they
  /// are part of the estimator's loss count); `cumulative_corrupted` the
  /// running total. Both default to zero = no corruption split on the
  /// wire.
  ReceiverReport build(const PlrEstimator& estimator,
                       std::uint16_t highest_sequence,
                       std::uint64_t corrupted_interval = 0,
                       std::uint64_t cumulative_corrupted = 0);

 private:
  std::uint32_t reporter_ssrc_;
  std::uint32_t reportee_ssrc_;
  std::uint64_t last_lost_ = 0;
  std::uint64_t last_received_ = 0;
};

}  // namespace pbpair::net
