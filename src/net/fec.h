// Packet-level forward error correction: XOR parity and GF(256)
// Reed–Solomon erasure coding over the RTP stream.
//
// The paper buys error resilience by spending encoder energy on intra MBs;
// modern transports buy it with repair packets. FecEncoder groups each
// frame's media packets into windows of at most k and appends m repair
// packets per window; FecDecoder, sitting between the channel and the
// depacketizer, uses whatever subset arrived to reconstruct missing media
// packets — any k of the k+m window packets suffice — and re-injects them
// into the normal receive path, so recovery is invisible to the decoder.
//
// Code construction (DESIGN.md §12): systematic, with repair row j of the
// generator matrix taken from a Cauchy matrix over GF(256) —
// c_{j,i} = 1 / (x_j ^ y_i) with y_i = i (data columns) and x_j = 255 - j
// (repair rows). The x and y element sets are disjoint and internally
// distinct, so every square submatrix is invertible and ANY k received
// packets of a window determine the other m (the MDS property). XOR
// parity is the m = 1 special case with an all-ones row; it is kept as a
// distinct wire scheme because it needs no field multiplies at all.
//
// The protected symbol for a media packet is [u16 wire length | serialized
// wire bytes | zero padding] — length-prefixing lets windows mix packet
// sizes, and protecting the full wire image means a recovered packet
// round-trips through parse_packet exactly like a delivered one (when CRC
// framing is on, the wire image includes the CRC64 trailer, so a
// reconstruction is verifiable end to end). All
// multi-byte fields are big-endian on the wire (the aarch64 CI job runs
// the same property tests to keep the byte order honest off-x86).
//
// Repair packets are real RTP packets (payload type kPayloadTypeFec, own
// SSRC offset, own sequence space), so the channel drops them like any
// other packet, the fault injector damages them at the byte level, and
// their wire bytes are metered by the transmit-energy model — FEC's energy
// cost is accounted, which is what bench/fec_tradeoff trades off against
// PBPAIR's intra-refresh energy.
#pragma once

#include <cstdint>
#include <vector>

#include "net/packet.h"

namespace pbpair::net {

enum class FecScheme : std::uint8_t {
  kXorParity = 1,    // m == 1, repair = XOR of the window
  kReedSolomon = 2,  // any k of (k+m), Cauchy rows over GF(256)
};

/// Window geometry bounds. k + m must stay below 256 so the Cauchy element
/// sets stay disjoint; the caps keep the solve cost (O(m^3 + m^2·L)) and
/// the per-window latency bounded far below that.
inline constexpr int kMaxFecK = 24;
inline constexpr int kMaxFecM = 8;

struct FecConfig {
  FecScheme scheme = FecScheme::kReedSolomon;
  int k = 8;  // data packets per window (1..kMaxFecK)
  int m = 1;  // repair packets per window (0..kMaxFecM; 0 disables)
  std::uint32_t ssrc_offset = 2;  // repair SSRC = media SSRC + this

  bool enabled() const { return k > 0 && m > 0; }
};

/// Repair payload header (8 bytes, big-endian u16s), followed by
/// symbol_len bytes of the FEC combination.
struct FecRepairHeader {
  std::uint8_t scheme = 0;
  std::uint8_t k = 0;             // data packets in THIS window (may be < config k)
  std::uint8_t m = 0;             // repair packets emitted for this window
  std::uint8_t repair_index = 0;  // 0..m-1
  std::uint16_t base_sequence = 0;  // media sequence of the window's first packet
  std::uint16_t symbol_len = 0;     // bytes of FEC symbol following the header
};

inline constexpr std::size_t kFecRepairHeaderSize = 8;

/// Serializes `header` in front of `symbol` as a repair payload.
std::vector<std::uint8_t> serialize_repair_payload(
    const FecRepairHeader& header, const std::vector<std::uint8_t>& symbol);

/// Parses a repair packet's payload. Returns false when the payload is too
/// short, the scheme byte is unknown, the geometry is out of bounds
/// (k > kMaxFecK, m > kMaxFecM, repair_index >= m, k == 0), or the symbol
/// bytes don't match symbol_len. `packet` is UNTRUSTED.
bool parse_repair_header(const Packet& packet, FecRepairHeader* header);

/// The Cauchy generator coefficient for repair row j, data column i.
/// Exposed so tests can cross-check the decoder's solve against an
/// independently built matrix.
std::uint8_t fec_cauchy_coefficient(int repair_index, int data_index);

struct FecEncoderStats {
  std::uint64_t windows = 0;
  std::uint64_t media_packets = 0;
  std::uint64_t repair_packets = 0;
  std::uint64_t repair_bytes = 0;  // wire bytes of emitted repair packets
};

class FecEncoder {
 public:
  /// `arena` backs the repair payloads (null = process scratch arena).
  /// Repair symbols are accumulated directly into the arena allocation by
  /// streaming GF(256) addmul over each media packet's [length | header]
  /// prefix and borrowed payload slice — no per-packet symbol buffers.
  explicit FecEncoder(const FecConfig& config, BufferArena* arena = nullptr);

  /// Appends repair packets for one frame's media packets. Windows never
  /// span frames: packets are grouped into ceil(n/k) windows in order, the
  /// last window covering whatever remains (its header k is the actual
  /// count). Returns the number of repair packets appended. With m == 0
  /// (or an empty frame) this is a no-op.
  int protect(std::vector<Packet>* packets);

  /// Live adaptation hook (joint Intra_Th/FEC-rate control): changes the
  /// repair count for FUTURE windows. Clamped to [0, kMaxFecM]; the XOR
  /// scheme caps at 1 (a second identical parity row recovers nothing).
  void set_m(int m);
  int m() const { return config_.m; }
  int k() const { return config_.k; }
  const FecConfig& config() const { return config_; }
  const FecEncoderStats& stats() const { return stats_; }

 private:
  FecConfig config_;
  BufferArena* arena_;
  std::uint16_t next_repair_sequence_ = 0;
  FecEncoderStats stats_;
};

struct FecDecoderStats {
  std::uint64_t windows_seen = 0;         // distinct repair windows observed
  std::uint64_t repair_packets_seen = 0;
  std::uint64_t repair_packets_invalid = 0;  // malformed/conflicting headers
  std::uint64_t packets_recovered = 0;       // media packets reconstructed
  std::uint64_t windows_unrecoverable = 0;   // losses exceeded repair count
  std::uint64_t recovered_unparseable = 0;   // solve output failed RTP parse
  std::uint64_t recovered_crc_failed = 0;    // solve output failed its CRC
};

class FecDecoder {
 public:
  /// `arena` receives recovered wire images (each reconstructed packet's
  /// payload is a slice into its recovered slab); null = process scratch
  /// arena. With `expect_crc`, a reconstruction whose CRC64 trailer does
  /// not match is dropped and counted (recovered_crc_failed) — a
  /// mis-solve caused by undetected symbol damage can no longer smuggle
  /// garbage past the verify stage, which runs before FEC decode.
  explicit FecDecoder(BufferArena* arena = nullptr, bool expect_crc = false);

  /// Consumes the repair packets in `packets` (they never propagate
  /// downstream), reconstructs whatever missing media packets the
  /// surviving window subsets determine, and returns the media stream:
  /// survivors in arrival order with each recovered packet (marked
  /// Packet::recovered) spliced in by sequence. `packets` is UNTRUSTED —
  /// conflicting window headers, duplicate or truncated repair packets,
  /// stale base sequences, and corrupted symbols are counted and skipped,
  /// never asserted on. Symbols damaged in ways FEC cannot see (bit flips
  /// that still parse) produce wrong reconstructions; those that no longer
  /// frame as RTP are dropped and counted (recovered_unparseable), the
  /// rest are handed to the decoder, which conceals garbage like any
  /// other hostile bytes.
  std::vector<Packet> process(std::vector<Packet> packets);

  const FecDecoderStats& stats() const { return stats_; }

 private:
  BufferArena* arena_;
  bool expect_crc_;
  FecDecoderStats stats_;
};

}  // namespace pbpair::net
