#include "net/loss_model.h"

#include "common/check.h"

namespace pbpair::net {

UniformFrameLoss::UniformFrameLoss(double rate, std::uint64_t seed)
    : rate_(rate), seed_(seed), rng_(seed) {
  PB_CHECK(rate >= 0.0 && rate <= 1.0);
}

bool UniformFrameLoss::should_drop(const Packet& packet) {
  if (packet.header.timestamp != current_frame_) {
    current_frame_ = packet.header.timestamp;
    drop_current_ = rng_.next_bernoulli(rate_);
  }
  return drop_current_;
}

void UniformFrameLoss::reset() {
  rng_ = common::Pcg32(seed_);
  current_frame_ = 0xFFFFFFFF;
  drop_current_ = false;
}

BernoulliPacketLoss::BernoulliPacketLoss(double rate, std::uint64_t seed)
    : rate_(rate), seed_(seed), rng_(seed) {
  PB_CHECK(rate >= 0.0 && rate <= 1.0);
}

bool BernoulliPacketLoss::should_drop(const Packet&) {
  return rng_.next_bernoulli(rate_);
}

void BernoulliPacketLoss::reset() { rng_ = common::Pcg32(seed_); }

GilbertElliottLoss::GilbertElliottLoss(const Params& params,
                                       std::uint64_t seed)
    : params_(params), seed_(seed), rng_(seed) {
  PB_CHECK(params.p_good_to_bad >= 0.0 && params.p_good_to_bad <= 1.0);
  PB_CHECK(params.p_bad_to_good > 0.0 && params.p_bad_to_good <= 1.0);
  PB_CHECK(params.loss_in_good >= 0.0 && params.loss_in_good <= 1.0);
  PB_CHECK(params.loss_in_bad >= 0.0 && params.loss_in_bad <= 1.0);
}

bool GilbertElliottLoss::should_drop(const Packet&) {
  // State transition first, then the state-conditioned loss draw.
  if (in_bad_state_) {
    if (rng_.next_bernoulli(params_.p_bad_to_good)) in_bad_state_ = false;
  } else {
    if (rng_.next_bernoulli(params_.p_good_to_bad)) in_bad_state_ = true;
  }
  return rng_.next_bernoulli(in_bad_state_ ? params_.loss_in_bad
                                           : params_.loss_in_good);
}

void GilbertElliottLoss::reset() {
  rng_ = common::Pcg32(seed_);
  in_bad_state_ = false;
}

double GilbertElliottLoss::average_loss_rate() const {
  // Stationary distribution of the two-state chain.
  double pi_bad = params_.p_good_to_bad /
                  (params_.p_good_to_bad + params_.p_bad_to_good);
  return pi_bad * params_.loss_in_bad + (1.0 - pi_bad) * params_.loss_in_good;
}

}  // namespace pbpair::net
