#include "net/loss_model.h"

#include "common/check.h"

namespace pbpair::net {

UniformFrameLoss::UniformFrameLoss(double rate, std::uint64_t seed)
    : rate_(rate), seed_(seed), rng_(seed) {
  PB_CHECK(rate >= 0.0 && rate <= 1.0);
}

bool UniformFrameLoss::should_drop(const Packet& packet) {
  if (packet.header.timestamp != current_frame_) {
    current_frame_ = packet.header.timestamp;
    drop_current_ = rng_.next_bernoulli(rate_);
  }
  return drop_current_;
}

void UniformFrameLoss::reset() {
  rng_ = common::Pcg32(seed_);
  current_frame_ = 0xFFFFFFFF;
  drop_current_ = false;
}

BernoulliPacketLoss::BernoulliPacketLoss(double rate, std::uint64_t seed)
    : rate_(rate), seed_(seed), rng_(seed) {
  PB_CHECK(rate >= 0.0 && rate <= 1.0);
}

bool BernoulliPacketLoss::should_drop(const Packet&) {
  return rng_.next_bernoulli(rate_);
}

void BernoulliPacketLoss::reset() { rng_ = common::Pcg32(seed_); }

GilbertElliottLoss::GilbertElliottLoss(const Params& params,
                                       std::uint64_t seed)
    : params_(params), seed_(seed), rng_(seed) {
  PB_CHECK(params.p_good_to_bad >= 0.0 && params.p_good_to_bad <= 1.0);
  PB_CHECK(params.p_bad_to_good > 0.0 && params.p_bad_to_good <= 1.0);
  PB_CHECK(params.loss_in_good >= 0.0 && params.loss_in_good <= 1.0);
  PB_CHECK(params.loss_in_bad >= 0.0 && params.loss_in_bad <= 1.0);
}

bool GilbertElliottLoss::should_drop(const Packet&) {
  // State transition first, then the state-conditioned loss draw.
  if (in_bad_state_) {
    if (rng_.next_bernoulli(params_.p_bad_to_good)) in_bad_state_ = false;
  } else {
    if (rng_.next_bernoulli(params_.p_good_to_bad)) in_bad_state_ = true;
  }
  return rng_.next_bernoulli(in_bad_state_ ? params_.loss_in_bad
                                           : params_.loss_in_good);
}

void GilbertElliottLoss::reset() {
  rng_ = common::Pcg32(seed_);
  in_bad_state_ = false;
}

double GilbertElliottLoss::average_loss_rate() const {
  // Stationary distribution of the two-state chain.
  double pi_bad = params_.p_good_to_bad /
                  (params_.p_good_to_bad + params_.p_bad_to_good);
  return pi_bad * params_.loss_in_bad + (1.0 - pi_bad) * params_.loss_in_good;
}

double GilbertElliottLoss::mean_burst_length() const {
  // should_drop() transitions the state FIRST, then draws the loss, so the
  // per-packet chain is over post-transition states with loss probability
  // l(state). Let m(s) be the expected number of FURTHER losses after a
  // loss observed in state s; one step of first-step analysis gives the
  // 2x2 linear system
  //   m_g = (1-p_gb)*l_g*(1+m_g) + p_gb*l_b*(1+m_b)
  //   m_b = p_bg*l_g*(1+m_g)     + (1-p_bg)*l_b*(1+m_b)
  const double p_gb = params_.p_good_to_bad;
  const double p_bg = params_.p_bad_to_good;
  const double l_g = params_.loss_in_good;
  const double l_b = params_.loss_in_bad;
  if (l_g <= 0.0 && l_b <= 0.0) return 0.0;

  const double a11 = 1.0 - (1.0 - p_gb) * l_g;
  const double a12 = -p_gb * l_b;
  const double a21 = -p_bg * l_g;
  const double a22 = 1.0 - (1.0 - p_bg) * l_b;
  const double c_g = (1.0 - p_gb) * l_g + p_gb * l_b;
  const double c_b = p_bg * l_g + (1.0 - p_bg) * l_b;
  const double det = a11 * a22 - a12 * a21;
  PB_CHECK(det > 0.0);  // det -> 0 only as every packet becomes a loss
  const double m_g = (c_g * a22 - a12 * c_b) / det;
  const double m_b = (a11 * c_b - c_g * a21) / det;

  // A burst STARTS at a loss preceded by a delivery; weight each starting
  // state by pi(prev) * (1 - l(prev)) * T(prev, s) * l(s).
  const double pi_b = p_gb / (p_gb + p_bg);
  const double pi_g = 1.0 - pi_b;
  const double w_g = (pi_g * (1.0 - l_g) * (1.0 - p_gb) +
                      pi_b * (1.0 - l_b) * p_bg) *
                     l_g;
  const double w_b = (pi_g * (1.0 - l_g) * p_gb +
                      pi_b * (1.0 - l_b) * (1.0 - p_bg)) *
                     l_b;
  const double w = w_g + w_b;
  if (w <= 0.0) return 0.0;  // losses exist but bursts never terminate/start
  return 1.0 + (w_g * m_g + w_b * m_b) / w;
}

}  // namespace pbpair::net
