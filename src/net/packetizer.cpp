#include "net/packetizer.h"

#include "common/check.h"

namespace pbpair::net {

Packetizer::Packetizer(const PacketizerConfig& config) : config_(config) {
  PB_CHECK(config.mtu > kHeaderWireSize);
}

std::vector<Packet> Packetizer::packetize(const codec::EncodedFrame& frame) {
  PB_CHECK(!frame.gob_offsets.empty());
  const std::size_t max_payload = config_.mtu - kHeaderWireSize;
  const int gobs = static_cast<int>(frame.gob_offsets.size());

  auto gob_end = [&](int gob) -> std::size_t {
    return gob + 1 < gobs ? frame.gob_offsets[gob + 1] : frame.bytes.size();
  };

  std::vector<Packet> packets;
  int gob = 0;
  while (gob < gobs) {
    int last = gob;  // inclusive; always take at least one GOB
    while (last + 1 < gobs &&
           gob_end(last + 1) - frame.gob_offsets[gob] <= max_payload) {
      ++last;
    }
    Packet packet;
    packet.header.sequence = next_sequence_++;
    packet.header.timestamp = static_cast<std::uint32_t>(frame.frame_index);
    packet.header.ssrc = config_.ssrc;
    packet.header.frame_type =
        frame.type == codec::FrameType::kIntra ? 0 : 1;
    packet.header.qp = static_cast<std::uint8_t>(frame.qp);
    packet.header.first_gob = static_cast<std::uint8_t>(gob);
    packet.header.num_gobs = static_cast<std::uint8_t>(last - gob + 1);
    packet.header.marker = last == gobs - 1;
    packet.payload.assign(
        frame.bytes.begin() +
            static_cast<std::ptrdiff_t>(frame.gob_offsets[gob]),
        frame.bytes.begin() + static_cast<std::ptrdiff_t>(gob_end(last)));
    packets.push_back(std::move(packet));
    gob = last + 1;
  }
  return packets;
}

codec::ReceivedFrame depacketize(const std::vector<Packet>& packets,
                                 int frame_index) {
  codec::ReceivedFrame received;
  received.frame_index = frame_index;
  if (packets.empty()) {
    received.any_data = false;
    return received;
  }
  received.any_data = true;
  received.type = packets.front().header.frame_type == 0
                      ? codec::FrameType::kIntra
                      : codec::FrameType::kInter;
  received.qp = packets.front().header.qp;
  for (const Packet& packet : packets) {
    PB_CHECK(packet.header.timestamp ==
             static_cast<std::uint32_t>(frame_index));
    codec::ReceivedFrame::GobSpan span;
    span.first_gob = packet.header.first_gob;
    span.bytes = packet.payload;
    received.spans.push_back(std::move(span));
  }
  return received;
}

}  // namespace pbpair::net
