#include "net/packetizer.h"

#include <algorithm>

#include "common/check.h"
#include "obs/metrics.h"

namespace pbpair::net {

Packetizer::Packetizer(const PacketizerConfig& config, BufferArena* arena)
    : config_(config),
      arena_(arena != nullptr ? arena : &BufferArena::scratch()) {
  PB_CHECK(config.mtu >
           kHeaderWireSize + (config.crc ? kCrcTrailerSize : 0));
}

std::vector<Packet> Packetizer::packetize(const codec::EncodedFrame& frame) {
  PB_CHECK(!frame.gob_offsets.empty());
  // first_gob/num_gobs travel as uint8; a frame taller than 255 GOBs
  // (height > 4080) cannot be represented on the wire and must fail
  // loudly here rather than alias GOB indices at the receiver.
  PB_CHECK_MSG(frame.gob_offsets.size() <= 255,
               "frame has more than 255 GOBs; payload header cannot "
               "address them (reduce height or extend the wire format)");
  const std::size_t max_payload = config_.mtu - kHeaderWireSize -
                                  (config_.crc ? kCrcTrailerSize : 0);
  const int gobs = static_cast<int>(frame.gob_offsets.size());

  // Stage the frame's bitstream into the arena once; every payload below
  // is a zero-copy slice of this allocation. The pre-arena packetizer
  // copied each payload out of the frame individually.
  const BufferRef staged =
      arena_->copy(frame.bytes.data(), frame.bytes.size());

  auto gob_end = [&](int gob) -> std::size_t {
    return gob + 1 < gobs ? frame.gob_offsets[gob + 1] : frame.bytes.size();
  };

  std::vector<Packet> packets;
  auto push_packet = [&](int first_gob, int num_gobs, std::size_t begin,
                         std::size_t end) {
    Packet packet;
    packet.header.sequence = next_sequence_++;
    packet.header.timestamp = static_cast<std::uint32_t>(frame.frame_index);
    packet.header.ssrc = config_.ssrc;
    packet.header.frame_type =
        frame.type == codec::FrameType::kIntra ? 0 : 1;
    packet.header.qp = static_cast<std::uint8_t>(frame.qp);
    packet.header.first_gob = static_cast<std::uint8_t>(first_gob);
    packet.header.num_gobs = static_cast<std::uint8_t>(num_gobs);
    packet.crc_present = config_.crc;
    packet.payload = staged.slice(begin, end - begin);
    common::ledger_legacy(end - begin);
    packets.push_back(std::move(packet));
  };

  int gob = 0;
  while (gob < gobs) {
    const std::size_t begin = frame.gob_offsets[gob];
    if (gob_end(gob) - begin > max_payload) {
      // One GOB alone exceeds the MTU: split it across a head packet
      // (num_gobs = 1) and continuation packets (num_gobs = 0, same
      // first_gob) so no packet ever exceeds the configured wire size.
      // The depacketizer re-joins a continuation only onto its immediate
      // sequence predecessor; losing the head loses the GOB, exactly the
      // loss granularity IP fragmentation would have had.
      const std::size_t end = gob_end(gob);
      push_packet(gob, 1, begin, begin + max_payload);
      std::size_t offset = begin + max_payload;
      while (offset < end) {
        const std::size_t chunk = std::min(max_payload, end - offset);
        push_packet(gob, 0, offset, offset + chunk);
        offset += chunk;
      }
      ++gob;
      continue;
    }
    int last = gob;  // inclusive; always take at least one GOB
    while (last + 1 < gobs &&
           gob_end(last + 1) - begin <= max_payload) {
      ++last;
    }
    push_packet(gob, last - gob + 1, begin, gob_end(last));
    gob = last + 1;
  }
  packets.back().header.marker = true;
  return packets;
}

codec::ReceivedFrame depacketize(const std::vector<Packet>& packets,
                                 int frame_index) {
  // Robustness contract (DESIGN.md §11): `packets` is untrusted — any
  // header field may be damaged. Packets that do not belong to this frame
  // are dropped and counted, never asserted on; whatever survives is
  // handed to the decoder, which conceals the rest.
  codec::ReceivedFrame received;
  received.frame_index = frame_index;

  std::uint64_t dropped_bad_header = 0;
  std::uint64_t dropped_orphan_continuation = 0;
  std::uint64_t dropped_stray_fec = 0;
  bool have_meta = false;
  // Continuation packets (num_gobs == 0) re-join an oversized GOB split
  // by the packetizer. One is accepted only immediately after its
  // predecessor in sequence for the same GOB; anything else (lost head,
  // reordered or duplicated fragment) is an orphan and is dropped.
  int continuation_gob = -1;
  std::uint16_t expected_continuation_seq = 0;

  for (const Packet& packet : packets) {
    if (packet.is_fec_repair()) {
      // A repair packet only reaches the depacketizer when no FEC decoder
      // ran (or damage forged the payload type); its payload is a FEC
      // symbol, not GOB data, so it is dropped — counted separately from
      // bad headers so the leak is visible in the metrics.
      ++dropped_stray_fec;
      continuation_gob = -1;
      continue;
    }
    if (packet.header.timestamp != static_cast<std::uint32_t>(frame_index)) {
      ++dropped_bad_header;
      continuation_gob = -1;
      continue;
    }
    if (packet.header.num_gobs == 0) {
      if (continuation_gob >= 0 &&
          packet.header.first_gob == continuation_gob &&
          packet.header.sequence == expected_continuation_seq &&
          !received.spans.empty()) {
        // Continuation slices of one staged frame are contiguous in the
        // arena, so this join usually just widens the span's view.
        received.spans.back().bytes.append(packet.payload);
        common::ledger_legacy(packet.payload.size());
        expected_continuation_seq =
            static_cast<std::uint16_t>(packet.header.sequence + 1);
      } else {
        ++dropped_orphan_continuation;
        continuation_gob = -1;
      }
      continue;
    }
    if (!have_meta) {
      have_meta = true;
      received.type = packet.header.frame_type == 0
                          ? codec::FrameType::kIntra
                          : codec::FrameType::kInter;
      received.qp = packet.header.qp;
    }
    codec::ReceivedFrame::GobSpan span;
    span.first_gob = packet.header.first_gob;
    span.bytes = packet.payload;  // refcount share, no bytes copied
    common::ledger_legacy(packet.payload.size());
    received.spans.push_back(std::move(span));
    // Only a single-GOB packet can be continued (the packetizer never
    // splits a multi-GOB payload).
    continuation_gob =
        packet.header.num_gobs == 1 ? packet.header.first_gob : -1;
    expected_continuation_seq =
        static_cast<std::uint16_t>(packet.header.sequence + 1);
  }

  received.any_data = !received.spans.empty();
  if (obs::enabled()) {
    if (dropped_bad_header > 0) {
      static obs::Counter* c = &obs::counter("net.dropped_bad_header");
      c->add(dropped_bad_header);
    }
    if (dropped_orphan_continuation > 0) {
      static obs::Counter* c =
          &obs::counter("net.dropped_orphan_continuation");
      c->add(dropped_orphan_continuation);
    }
    if (dropped_stray_fec > 0) {
      static obs::Counter* c = &obs::counter("net.dropped_stray_fec");
      c->add(dropped_stray_fec);
    }
  }
  return received;
}

}  // namespace pbpair::net
