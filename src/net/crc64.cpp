// Slice-by-8 CRC64 kernel (see crc64.h). Tables are built once at first
// use; table 0 is the classic byte-at-a-time table and tables 1..7 are its
// compositions, so eight table lookups advance the state by eight bytes.
#include "net/crc64.h"

namespace pbpair::net {
namespace {

struct Crc64Tables {
  std::uint64_t t[8][256];

  Crc64Tables() {
    for (unsigned i = 0; i < 256; ++i) {
      std::uint64_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc >> 1) ^ ((crc & 1) ? kCrc64Poly : 0);
      }
      t[0][i] = crc;
    }
    for (unsigned i = 0; i < 256; ++i) {
      std::uint64_t crc = t[0][i];
      for (int k = 1; k < 8; ++k) {
        crc = t[0][crc & 0xFF] ^ (crc >> 8);
        t[k][i] = crc;
      }
    }
  }
};

const Crc64Tables& tables() {
  static const Crc64Tables kTables;
  return kTables;
}

}  // namespace

Crc64State crc64_update(Crc64State state, const std::uint8_t* data,
                        std::size_t size) {
  const Crc64Tables& tab = tables();
  std::uint64_t crc = state;
  while (size >= 8) {
    crc ^= static_cast<std::uint64_t>(data[0]) |
           (static_cast<std::uint64_t>(data[1]) << 8) |
           (static_cast<std::uint64_t>(data[2]) << 16) |
           (static_cast<std::uint64_t>(data[3]) << 24) |
           (static_cast<std::uint64_t>(data[4]) << 32) |
           (static_cast<std::uint64_t>(data[5]) << 40) |
           (static_cast<std::uint64_t>(data[6]) << 48) |
           (static_cast<std::uint64_t>(data[7]) << 56);
    crc = tab.t[7][crc & 0xFF] ^ tab.t[6][(crc >> 8) & 0xFF] ^
          tab.t[5][(crc >> 16) & 0xFF] ^ tab.t[4][(crc >> 24) & 0xFF] ^
          tab.t[3][(crc >> 32) & 0xFF] ^ tab.t[2][(crc >> 40) & 0xFF] ^
          tab.t[1][(crc >> 48) & 0xFF] ^ tab.t[0][(crc >> 56) & 0xFF];
    data += 8;
    size -= 8;
  }
  while (size-- > 0) {
    crc = tab.t[0][(crc ^ *data++) & 0xFF] ^ (crc >> 8);
  }
  return crc;
}

}  // namespace pbpair::net
