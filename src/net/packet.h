// RTP-style packet types (paper §4.1: "we use the real time protocol (RTP)
// and the variable-size encoded output of each frame is contained by a
// single packet as long as it does not exceed the MTU").
//
// The payload header mirrors RFC 2190 mode B: enough picture-level state
// (frame type, QP, GOB range) for each packet to be decoded independently
// of its siblings, so losing one fragment of a frame costs only the GOBs
// it carried.
#pragma once

#include <cstdint>
#include <vector>

namespace pbpair::net {

/// RFC 3551 static payload type for the H.263 media stream.
inline constexpr std::uint8_t kPayloadTypeH263 = 34;
/// Dynamic-range payload type carrying FEC repair symbols (net/fec.h).
/// Repair packets share the RTP framing (so the channel, fault injector,
/// and energy model treat them like any other wire bytes) but are consumed
/// by the FEC decoder and never reach the depacketizer.
inline constexpr std::uint8_t kPayloadTypeFec = 97;

struct RtpHeader {
  // Core RTP fields (RFC 3550 subset).
  std::uint16_t sequence = 0;
  std::uint32_t timestamp = 0;  // frame index
  std::uint32_t ssrc = 0;
  bool marker = false;          // last packet of the frame
  std::uint8_t payload_type = kPayloadTypeH263;

  // H.263-style payload header (RFC 2190 mode B analogue). For FEC repair
  // packets these four bytes are repurposed by net/fec.h (the repair
  // window header lives in the payload; these stay zero).
  std::uint8_t frame_type = 0;  // 0 = I, 1 = P
  std::uint8_t qp = 0;
  std::uint8_t first_gob = 0;
  std::uint8_t num_gobs = 0;
};

struct Packet {
  RtpHeader header;
  std::vector<std::uint8_t> payload;

  /// Not a wire field: set by the FEC decoder on packets it reconstructed
  /// from repair symbols, so the feedback loop can keep reporting the
  /// NETWORK loss rate (a recovered packet was still lost on the wire).
  bool recovered = false;

  std::size_t wire_size() const;  // serialized header + payload bytes

  bool is_fec_repair() const {
    return header.payload_type == kPayloadTypeFec;
  }
};

/// Serialized size of the fixed header (12-byte RTP + 4-byte payload hdr).
inline constexpr std::size_t kHeaderWireSize = 16;

/// Serializes header+payload to wire format.
std::vector<std::uint8_t> serialize_packet(const Packet& packet);

/// Parses wire format back; returns false on malformed input.
bool parse_packet(const std::vector<std::uint8_t>& wire, Packet* packet);

}  // namespace pbpair::net
