// RTP-style packet types (paper §4.1: "we use the real time protocol (RTP)
// and the variable-size encoded output of each frame is contained by a
// single packet as long as it does not exceed the MTU").
//
// The payload header mirrors RFC 2190 mode B: enough picture-level state
// (frame type, QP, GOB range) for each packet to be decoded independently
// of its siblings, so losing one fragment of a frame costs only the GOBs
// it carried.
#pragma once

#include <cstdint>
#include <vector>

namespace pbpair::net {

struct RtpHeader {
  // Core RTP fields (RFC 3550 subset).
  std::uint16_t sequence = 0;
  std::uint32_t timestamp = 0;  // frame index
  std::uint32_t ssrc = 0;
  bool marker = false;          // last packet of the frame

  // H.263-style payload header (RFC 2190 mode B analogue).
  std::uint8_t frame_type = 0;  // 0 = I, 1 = P
  std::uint8_t qp = 0;
  std::uint8_t first_gob = 0;
  std::uint8_t num_gobs = 0;
};

struct Packet {
  RtpHeader header;
  std::vector<std::uint8_t> payload;

  std::size_t wire_size() const;  // serialized header + payload bytes
};

/// Serialized size of the fixed header (12-byte RTP + 4-byte payload hdr).
inline constexpr std::size_t kHeaderWireSize = 16;

/// Serializes header+payload to wire format.
std::vector<std::uint8_t> serialize_packet(const Packet& packet);

/// Parses wire format back; returns false on malformed input.
bool parse_packet(const std::vector<std::uint8_t>& wire, Packet* packet);

}  // namespace pbpair::net
