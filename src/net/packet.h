// RTP-style packet types (paper §4.1: "we use the real time protocol (RTP)
// and the variable-size encoded output of each frame is contained by a
// single packet as long as it does not exceed the MTU").
//
// The payload header mirrors RFC 2190 mode B: enough picture-level state
// (frame type, QP, GOB range) for each packet to be decoded independently
// of its siblings, so losing one fragment of a frame costs only the GOBs
// it carried.
//
// Payloads are arena-backed BufferRef slices (net/buffer.h): parsing a wire
// image held in an arena yields a packet whose payload borrows the same
// bytes, and copying a packet bumps a refcount instead of copying bytes.
//
// Optional integrity framing: when a sender sets crc_present, the RTP X bit
// (byte 0, mask 0x10) is raised and an 8-byte big-endian CRC64 trailer over
// header+payload follows the payload. Parsing only honours the X bit when
// the caller passes expect_crc — the default parse is bit-for-bit the
// pre-CRC behaviour, which is what keeps zero-CRC configs byte-identical.
#pragma once

#include <cstdint>
#include <vector>

#include "net/buffer.h"

namespace pbpair::net {

/// RFC 3551 static payload type for the H.263 media stream.
inline constexpr std::uint8_t kPayloadTypeH263 = 34;
/// Dynamic-range payload type carrying FEC repair symbols (net/fec.h).
/// Repair packets share the RTP framing (so the channel, fault injector,
/// and energy model treat them like any other wire bytes) but are consumed
/// by the FEC decoder and never reach the depacketizer.
inline constexpr std::uint8_t kPayloadTypeFec = 97;

struct RtpHeader {
  // Core RTP fields (RFC 3550 subset).
  std::uint16_t sequence = 0;
  std::uint32_t timestamp = 0;  // frame index
  std::uint32_t ssrc = 0;
  bool marker = false;          // last packet of the frame
  std::uint8_t payload_type = kPayloadTypeH263;

  // H.263-style payload header (RFC 2190 mode B analogue). For FEC repair
  // packets these four bytes are repurposed by net/fec.h (the repair
  // window header lives in the payload; these stay zero).
  std::uint8_t frame_type = 0;  // 0 = I, 1 = P
  std::uint8_t qp = 0;
  std::uint8_t first_gob = 0;
  std::uint8_t num_gobs = 0;
};

struct Packet {
  RtpHeader header;
  BufferRef payload;

  /// Not a wire field: set by the FEC decoder on packets it reconstructed
  /// from repair symbols, so the feedback loop can keep reporting the
  /// NETWORK loss rate (a recovered packet was still lost on the wire).
  bool recovered = false;

  /// Wire X bit: an 8-byte CRC64 trailer follows the payload.
  bool crc_present = false;
  /// Set by parse_packet when expect_crc is passed; false means the
  /// trailer did not match the bytes (the packet is corrupted).
  bool crc_ok = true;

  std::size_t wire_size() const;  // header + payload (+ trailer) bytes

  bool is_fec_repair() const {
    return header.payload_type == kPayloadTypeFec;
  }
};

/// Serialized size of the fixed header (12-byte RTP + 4-byte payload hdr).
inline constexpr std::size_t kHeaderWireSize = 16;
/// Size of the optional CRC64 integrity trailer.
inline constexpr std::size_t kCrcTrailerSize = 8;

/// Optional wire-format features, threaded through PipelineConfig.
struct WireConfig {
  /// CRC64-frame every packet and verify at the receiver, classifying
  /// damaged-in-flight packets as corrupted instead of silently decoding
  /// garbage (or conflating them with losses).
  bool crc = true;

  bool enabled() const { return crc; }
};

/// Receiver-side integrity tally (verify stage of sim::StreamSession).
struct WireStats {
  std::uint64_t packets_checked = 0;
  std::uint64_t crc_corrupted = 0;  // dropped: trailer mismatch or missing
};

/// Serializes header+payload (+CRC trailer when crc_present) to wire
/// format.
std::vector<std::uint8_t> serialize_packet(const Packet& packet);

/// Writes the 16 fixed header bytes (no payload, no trailer) into `out`.
/// The zero-copy FEC path streams [header | payload | trailer] slices
/// through the GF(256) kernels without materializing the wire image.
void serialize_header(const Packet& packet,
                      std::uint8_t out[kHeaderWireSize]);

/// CRC64 over the serialized header + payload — the value the wire trailer
/// carries when crc_present.
std::uint64_t packet_crc64(const Packet& packet);

/// Parses wire format back; returns false on malformed input. The payload
/// is copied into the scratch arena. With expect_crc, a raised X bit makes
/// the parser verify the trailer and record the verdict in packet->crc_ok
/// (parsing still succeeds — classification is the receiver's job).
/// Without expect_crc the X bit is ignored, exactly as before CRC framing
/// existed.
bool parse_packet(const std::uint8_t* wire, std::size_t size, Packet* packet,
                  bool expect_crc = false);

/// Convenience overload over a byte vector (tests, fault injector).
bool parse_packet(const std::vector<std::uint8_t>& wire, Packet* packet,
                  bool expect_crc = false);

/// Zero-copy parse: the packet's payload becomes a slice of `wire` — no
/// bytes move. `wire` is the arena-backed wire image (recovered FEC slab,
/// staged frame, ...).
bool parse_packet_ref(const BufferRef& wire, Packet* packet,
                      bool expect_crc = false);

}  // namespace pbpair::net
