#include "net/channel.h"

#include <chrono>
#include <string>

#include "common/check.h"
#include "obs/log.h"
#include "obs/metrics.h"

namespace pbpair::net {

Channel::Channel(LossModel* loss) : loss_(loss) { PB_CHECK(loss != nullptr); }

std::vector<Packet> Channel::transmit(const std::vector<Packet>& packets) {
  std::vector<Packet> delivered;
  delivered.reserve(packets.size());
  std::uint64_t sent = 0, dropped = 0, bytes = 0;
  // Per-packet wire-path timing, cheap enough (log2-bucket histogram) to
  // stay on in production builds. Deterministic reports strip all *_ns
  // series, so this never perturbs byte-identity.
  const bool timed = obs::enabled();
  obs::Histogram* wire_ns = nullptr;
  if (timed) {
    static obs::Histogram* h = &obs::histogram("net.wire.ns");
    wire_ns = h;
  }
  for (const Packet& packet : packets) {
    const auto t0 = timed ? std::chrono::steady_clock::now()
                          : std::chrono::steady_clock::time_point();
    stats_.packets_sent += 1;
    stats_.bytes_sent += packet.wire_size();
    ++sent;
    bytes += packet.wire_size();
    if (loss_->should_drop(packet)) {
      stats_.packets_dropped += 1;
      ++dropped;
      if (timed) {
        wire_ns->observe(static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - t0)
                .count()));
      }
      continue;
    }
    stats_.bytes_delivered += packet.wire_size();
    // Delivery shares the payload (refcount bump); the pre-arena channel
    // copied the payload bytes into the delivered vector here.
    common::ledger_legacy(packet.payload.size());
    delivered.push_back(packet);
    if (timed) {
      wire_ns->observe(static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - t0)
              .count()));
    }
  }
  if (dropped > 0) {
    PB_LOG_DEBUG("channel %s dropped %llu/%llu packets", loss_->name(),
                 static_cast<unsigned long long>(dropped),
                 static_cast<unsigned long long>(sent));
  }
  if (obs::enabled() && sent > 0) {
    static obs::Counter* c_sent = &obs::counter("net.packets_sent");
    static obs::Counter* c_dropped = &obs::counter("net.packets_dropped");
    static obs::Counter* c_bytes = &obs::counter("net.bytes_sent");
    c_sent->add(sent);
    c_bytes->add(bytes);
    if (dropped > 0) {
      c_dropped->add(dropped);
      // Per-model drop attribution, e.g. net.packets_dropped.gilbert-elliott.
      // Resolved once per channel (one map lookup), then each add() is a
      // lock-free bump on the calling thread's shard.
      if (drop_counter_ == nullptr) {
        drop_counter_ =
            &obs::counter(std::string("net.packets_dropped.") + loss_->name());
      }
      drop_counter_->add(dropped);
    }
  }
  return delivered;
}

void Channel::reset() {
  stats_ = ChannelStats{};
  loss_->reset();
}

}  // namespace pbpair::net
