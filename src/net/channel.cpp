#include "net/channel.h"

#include "common/check.h"

namespace pbpair::net {

Channel::Channel(LossModel* loss) : loss_(loss) { PB_CHECK(loss != nullptr); }

std::vector<Packet> Channel::transmit(const std::vector<Packet>& packets) {
  std::vector<Packet> delivered;
  delivered.reserve(packets.size());
  for (const Packet& packet : packets) {
    stats_.packets_sent += 1;
    stats_.bytes_sent += packet.wire_size();
    if (loss_->should_drop(packet)) {
      stats_.packets_dropped += 1;
      continue;
    }
    stats_.bytes_delivered += packet.wire_size();
    delivered.push_back(packet);
  }
  return delivered;
}

void Channel::reset() {
  stats_ = ChannelStats{};
  loss_->reset();
}

}  // namespace pbpair::net
