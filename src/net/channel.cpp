#include "net/channel.h"

#include <string>

#include "common/check.h"
#include "obs/log.h"
#include "obs/metrics.h"

namespace pbpair::net {

Channel::Channel(LossModel* loss) : loss_(loss) { PB_CHECK(loss != nullptr); }

std::vector<Packet> Channel::transmit(const std::vector<Packet>& packets) {
  std::vector<Packet> delivered;
  delivered.reserve(packets.size());
  std::uint64_t sent = 0, dropped = 0, bytes = 0;
  for (const Packet& packet : packets) {
    stats_.packets_sent += 1;
    stats_.bytes_sent += packet.wire_size();
    ++sent;
    bytes += packet.wire_size();
    if (loss_->should_drop(packet)) {
      stats_.packets_dropped += 1;
      ++dropped;
      continue;
    }
    stats_.bytes_delivered += packet.wire_size();
    delivered.push_back(packet);
  }
  if (dropped > 0) {
    PB_LOG_DEBUG("channel %s dropped %llu/%llu packets", loss_->name(),
                 static_cast<unsigned long long>(dropped),
                 static_cast<unsigned long long>(sent));
  }
  if (obs::enabled() && sent > 0) {
    static obs::Counter* c_sent = &obs::counter("net.packets_sent");
    static obs::Counter* c_dropped = &obs::counter("net.packets_dropped");
    static obs::Counter* c_bytes = &obs::counter("net.bytes_sent");
    c_sent->add(sent);
    c_bytes->add(bytes);
    if (dropped > 0) {
      c_dropped->add(dropped);
      // Per-model drop attribution, e.g. net.packets_dropped.gilbert-elliott.
      obs::counter(std::string("net.packets_dropped.") + loss_->name())
          .add(dropped);
    }
  }
  return delivered;
}

void Channel::reset() {
  stats_ = ChannelStats{};
  loss_->reset();
}

}  // namespace pbpair::net
