// Receiver-side packet-loss estimation (the "proper interfacing mechanism
// between the codec and the network" the paper's §3.2/§5 calls for).
//
// The receiver watches RTP sequence numbers and reports a windowed loss
// estimate, RTCP receiver-report style; the sender feeds it to
// PbpairPolicy::set_plr / PowerAwareController::on_plr_update.
#pragma once

#include <cstdint>
#include <deque>

#include "net/packet.h"

namespace pbpair::net {

class PlrEstimator {
 public:
  /// `window`: number of most-recent expected packets the estimate covers.
  explicit PlrEstimator(int window = 100);

  /// Records a delivered packet (by sequence number). Gaps in the sequence
  /// are counted as losses.
  void on_packet_received(std::uint16_t sequence);

  /// Records that `count` packets were expected but the receiver knows they
  /// are gone (used by simulations that bypass sequence tracking).
  void on_known_loss(int count);

  /// Current loss-rate estimate in [0,1]; 0 until any packet is seen.
  double estimate() const;

  std::uint64_t received() const { return received_; }
  std::uint64_t lost() const { return lost_; }

  void reset();

 private:
  void push(bool lost);

  int window_;
  std::deque<bool> events_;  // true = lost
  int lost_in_window_ = 0;
  bool have_last_ = false;
  std::uint16_t last_sequence_ = 0;
  std::uint64_t received_ = 0;
  std::uint64_t lost_ = 0;
};

}  // namespace pbpair::net
