// Receiver-side packet-loss estimation (the "proper interfacing mechanism
// between the codec and the network" the paper's §3.2/§5 calls for).
//
// The receiver watches RTP sequence numbers and reports a windowed loss
// estimate, RTCP receiver-report style; the sender feeds it to
// PbpairPolicy::set_plr / PowerAwareController::on_plr_update.
#pragma once

#include <cstdint>
#include <deque>
#include <utility>
#include <vector>

#include "common/check.h"
#include "net/packet.h"

namespace pbpair::net {

/// A FIFO delay line modelling feedback latency in frame units: a payload
/// pushed while processing frame `i` becomes visible to `take_due(j)` once
/// `j >= i + delay_frames`. Delay 0 reproduces instantaneous ("applied the
/// same frame") feedback, so legacy experiments keep their exact numbers;
/// a positive delay models the RTT the paper's §3.2 network-feedback loop
/// would see in practice (sim::StreamSession routes RTCP receiver reports
/// through one of these).
template <typename T>
class DelayedFeedback {
 public:
  explicit DelayedFeedback(int delay_frames) : delay_(delay_frames) {
    PB_CHECK(delay_frames >= 0);
  }

  int delay_frames() const { return delay_; }
  std::size_t pending() const { return queue_.size(); }

  /// Enqueues a payload generated at `sent_at_frame`.
  void push(int sent_at_frame, T payload) {
    queue_.push_back(Entry{sent_at_frame + delay_, std::move(payload)});
  }

  /// Pops every payload whose delivery frame has been reached, oldest
  /// first. Payloads pushed at frame `f` are due from frame `f + delay`.
  std::vector<T> take_due(int frame) {
    std::vector<T> due;
    while (!queue_.empty() && queue_.front().due_frame <= frame) {
      due.push_back(std::move(queue_.front().payload));
      queue_.pop_front();
    }
    return due;
  }

  void clear() { queue_.clear(); }

 private:
  struct Entry {
    int due_frame;
    T payload;
  };

  int delay_;
  std::deque<Entry> queue_;
};

class PlrEstimator {
 public:
  /// `window`: number of most-recent expected packets the estimate covers.
  explicit PlrEstimator(int window = 100);

  /// Records a delivered packet (by sequence number). Gaps in the sequence
  /// are counted as losses.
  void on_packet_received(std::uint16_t sequence);

  /// Records that `count` packets were expected but the receiver knows they
  /// are gone (used by simulations that bypass sequence tracking).
  void on_known_loss(int count);

  /// Current loss-rate estimate in [0,1]; 0 until any packet is seen.
  double estimate() const;

  std::uint64_t received() const { return received_; }
  std::uint64_t lost() const { return lost_; }

  void reset();

 private:
  void push(bool lost);

  int window_;
  std::deque<bool> events_;  // true = lost
  int lost_in_window_ = 0;
  bool have_last_ = false;
  std::uint16_t last_sequence_ = 0;
  std::uint64_t received_ = 0;
  std::uint64_t lost_ = 0;
};

}  // namespace pbpair::net
