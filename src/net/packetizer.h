// EncodedFrame <-> packets.
//
// A frame that fits in one MTU travels in a single packet (the paper's
// setup); larger frames — typically GOP's I-frames — are fragmented at GOB
// boundaries, each fragment carrying its GOB range in the payload header so
// it is independently decodable (RFC 2190 mode B style).
#pragma once

#include <vector>

#include "codec/syntax.h"
#include "net/packet.h"

namespace pbpair::net {

struct PacketizerConfig {
  std::size_t mtu = 1400;       // max wire size per packet (header incl.)
  std::uint32_t ssrc = 0x50425041;  // "PBPA"
};

class Packetizer {
 public:
  explicit Packetizer(const PacketizerConfig& config);

  /// Splits one encoded frame into >= 1 packets. GOB boundaries are never
  /// broken; a GOB larger than the MTU gets a packet of its own (the wire
  /// would fragment it at IP level — loss granularity stays per-GOB).
  std::vector<Packet> packetize(const codec::EncodedFrame& frame);

  void reset() { next_sequence_ = 0; }

 private:
  PacketizerConfig config_;
  std::uint16_t next_sequence_ = 0;
};

/// Reassembles whatever packets of one frame arrived into the decoder's
/// input. `packets` must all share one timestamp; pass an empty vector for
/// a fully lost frame (frame_index then tells the decoder which frame to
/// conceal).
codec::ReceivedFrame depacketize(const std::vector<Packet>& packets,
                                 int frame_index);

}  // namespace pbpair::net
