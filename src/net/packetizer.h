// EncodedFrame <-> packets.
//
// A frame that fits in one MTU travels in a single packet (the paper's
// setup); larger frames — typically GOP's I-frames — are fragmented at GOB
// boundaries, each fragment carrying its GOB range in the payload header so
// it is independently decodable (RFC 2190 mode B style).
#pragma once

#include <vector>

#include "codec/syntax.h"
#include "net/packet.h"

namespace pbpair::net {

struct PacketizerConfig {
  std::size_t mtu = 1400;       // max wire size per packet (header incl.)
  std::uint32_t ssrc = 0x50425041;  // "PBPA"
  /// Stamp every outgoing packet with a CRC64 trailer (raises the RTP X
  /// bit and spends kCrcTrailerSize of the MTU per packet).
  bool crc = false;
};

class Packetizer {
 public:
  /// `arena` backs the staged frame bytes every payload slices into; null
  /// falls back to the process-wide scratch arena. A per-session arena
  /// (sim::StreamSession owns one) keeps slab reuse session-local.
  explicit Packetizer(const PacketizerConfig& config,
                      BufferArena* arena = nullptr);

  /// Splits one encoded frame into >= 1 packets, none exceeding the MTU.
  /// GOB boundaries are never broken; a GOB larger than the MTU is split
  /// into a head packet (num_gobs = 1) plus continuation packets
  /// (num_gobs = 0, same first_gob) that depacketize() re-joins — loss
  /// granularity stays per-GOB because a continuation without its exact
  /// sequence predecessor is dropped. Frames with more than 255 GOBs
  /// cannot be addressed by the uint8 payload header and PB_CHECK-fail.
  std::vector<Packet> packetize(const codec::EncodedFrame& frame);

  void reset() { next_sequence_ = 0; }

 private:
  PacketizerConfig config_;
  BufferArena* arena_;
  std::uint16_t next_sequence_ = 0;
};

/// Reassembles whatever packets of one frame arrived into the decoder's
/// input. `packets` is UNTRUSTED: packets whose timestamp does not match
/// `frame_index` are dropped and counted (net.dropped_bad_header), orphan
/// continuations likewise (net.dropped_orphan_continuation) — never an
/// abort. Pass an empty vector for a fully lost frame (frame_index then
/// tells the decoder which frame to conceal).
codec::ReceivedFrame depacketize(const std::vector<Packet>& packets,
                                 int frame_index);

}  // namespace pbpair::net
