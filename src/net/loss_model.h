// Packet-loss models for the channel simulator.
//
// The paper's evaluation uses "a uniform distribution of frame discard" —
// whole frames are dropped with probability PLR (UniformFrameLoss). The
// richer models support the extension studies: per-packet Bernoulli loss,
// bursty Gilbert–Elliott loss, and scripted loss schedules that pin the
// exact loss events (Fig. 6's e1..e7, including the I-frame loss e7).
#pragma once

#include <cstdint>
#include <memory>
#include <set>
#include <vector>

#include "common/check.h"
#include "common/rng.h"
#include "net/packet.h"

namespace pbpair::net {

class LossModel {
 public:
  virtual ~LossModel() = default;
  virtual const char* name() const = 0;
  /// Decides the fate of one packet. Called in transmission order.
  virtual bool should_drop(const Packet& packet) = 0;
  virtual void reset() {}
};

/// Delivers everything.
class NoLoss final : public LossModel {
 public:
  const char* name() const override { return "no-loss"; }
  bool should_drop(const Packet&) override { return false; }
};

/// The paper's model: each FRAME is discarded with probability `rate`;
/// all packets of a discarded frame are dropped together.
class UniformFrameLoss final : public LossModel {
 public:
  UniformFrameLoss(double rate, std::uint64_t seed);
  const char* name() const override { return "uniform-frame"; }
  bool should_drop(const Packet& packet) override;
  void reset() override;

 private:
  double rate_;
  std::uint64_t seed_;
  common::Pcg32 rng_;
  std::uint32_t current_frame_ = 0xFFFFFFFF;
  bool drop_current_ = false;
};

/// Independent per-packet loss with probability `rate`.
class BernoulliPacketLoss final : public LossModel {
 public:
  BernoulliPacketLoss(double rate, std::uint64_t seed);
  const char* name() const override { return "bernoulli-packet"; }
  bool should_drop(const Packet&) override;
  void reset() override;

 private:
  double rate_;
  std::uint64_t seed_;
  common::Pcg32 rng_;
};

/// Two-state Gilbert–Elliott burst-loss model: per-packet transition
/// between Good and Bad states with state-dependent loss probability.
class GilbertElliottLoss final : public LossModel {
 public:
  struct Params {
    double p_good_to_bad = 0.05;
    double p_bad_to_good = 0.40;
    double loss_in_good = 0.005;
    double loss_in_bad = 0.50;
  };
  GilbertElliottLoss(const Params& params, std::uint64_t seed);
  const char* name() const override { return "gilbert-elliott"; }
  bool should_drop(const Packet&) override;
  void reset() override;

  /// Stationary average loss rate implied by the parameters.
  double average_loss_rate() const;

  /// Expected length, in packets, of a loss burst (a maximal run of
  /// consecutive drops) in the long run, by first-step analysis on the
  /// same transition-then-draw order should_drop() uses. Returns 0 when
  /// the parameters admit no losses at all.
  double mean_burst_length() const;

 private:
  Params params_;
  std::uint64_t seed_;
  common::Pcg32 rng_;
  bool in_bad_state_ = false;
};

/// Replays a recorded per-packet loss trace (true = drop), repeating from
/// the start when exhausted. Lets experiments run against captured channel
/// behaviour instead of a statistical model.
class TraceLoss final : public LossModel {
 public:
  explicit TraceLoss(std::vector<bool> trace) : trace_(std::move(trace)) {
    PB_CHECK(!trace_.empty());
  }
  const char* name() const override { return "trace"; }
  bool should_drop(const Packet&) override {
    bool drop = trace_[position_];
    position_ = (position_ + 1) % trace_.size();
    return drop;
  }
  void reset() override { position_ = 0; }

 private:
  std::vector<bool> trace_;
  std::size_t position_ = 0;
};

/// Drops exactly the frames in `frame_indices` (every packet of each).
/// Used to reproduce Fig. 6's pinned loss events.
class ScriptedFrameLoss final : public LossModel {
 public:
  explicit ScriptedFrameLoss(std::set<std::uint32_t> frame_indices)
      : frames_(std::move(frame_indices)) {}
  const char* name() const override { return "scripted-frame"; }
  bool should_drop(const Packet& packet) override {
    return frames_.count(packet.header.timestamp) > 0;
  }

 private:
  std::set<std::uint32_t> frames_;
};

}  // namespace pbpair::net
