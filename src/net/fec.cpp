#include "net/fec.h"

#include <algorithm>
#include <cstring>
#include <map>
#include <tuple>
#include <utility>

#include "common/check.h"
#include "net/gf256.h"
#include "obs/metrics.h"

namespace pbpair::net {
namespace {

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v & 0xFF));
}

// The protected symbol of a media packet — [u16 wire length | wire bytes |
// zero padding] — decomposed into the slices it is made of, so the GF(256)
// kernels can stream over them without materializing the symbol: a small
// stack prefix (length + serialized header), the borrowed payload ref, and
// the optional CRC trailer. Zero padding is skipped outright (addmul of
// zeros is the identity).
struct SymbolPieces {
  std::uint8_t prefix[2 + kHeaderWireSize];
  const BufferRef* payload;
  std::uint8_t trailer[kCrcTrailerSize];
  std::size_t trailer_len;
};

SymbolPieces make_symbol_pieces(const Packet& packet) {
  SymbolPieces pieces;
  const std::size_t wire = packet.wire_size();
  pieces.prefix[0] = static_cast<std::uint8_t>(wire >> 8);
  pieces.prefix[1] = static_cast<std::uint8_t>(wire & 0xFF);
  serialize_header(packet, pieces.prefix + 2);
  pieces.payload = &packet.payload;
  pieces.trailer_len = 0;
  if (packet.crc_present) {
    const std::uint64_t crc = packet_crc64(packet);
    for (int i = 0; i < 8; ++i) {
      pieces.trailer[i] = static_cast<std::uint8_t>(crc >> (56 - 8 * i));
    }
    pieces.trailer_len = kCrcTrailerSize;
  }
  return pieces;
}

// dst ^= c * symbol(pieces), streamed piece by piece. The caller
// guarantees the symbol fits (wire_size + 2 <= symbol_len).
void addmul_pieces(std::uint8_t* dst, const SymbolPieces& pieces,
                   std::uint8_t c) {
  gf256_addmul(dst, pieces.prefix, c, sizeof(pieces.prefix));
  gf256_addmul(dst + sizeof(pieces.prefix), pieces.payload->data(), c,
               pieces.payload->size());
  if (pieces.trailer_len > 0) {
    gf256_addmul(dst + sizeof(pieces.prefix) + pieces.payload->size(),
                 pieces.trailer, c, pieces.trailer_len);
  }
}

std::uint8_t coefficient(FecScheme scheme, int repair_index, int data_index) {
  return scheme == FecScheme::kXorParity
             ? 1
             : fec_cauchy_coefficient(repair_index, data_index);
}

}  // namespace

// Per-site cached-handle counter bump: the function-local static resolves
// the name once, then add() is a lock-free bump on the calling thread's
// shard. A macro so each expansion gets its own static (a shared helper
// would redo the registry map lookup on every call).
#define PB_BUMP(name, n)                                     \
  do {                                                       \
    const std::uint64_t pb_bump_n_ = (n);                    \
    if (pb_bump_n_ > 0 && obs::enabled()) {                  \
      static obs::Counter* pb_bump_c_ = &obs::counter(name); \
      pb_bump_c_->add(pb_bump_n_);                           \
    }                                                        \
  } while (0)

std::uint8_t fec_cauchy_coefficient(int repair_index, int data_index) {
  // Cauchy element sets: data columns y_i = i (i < kMaxFecK), repair rows
  // x_j = 255 - j (j < kMaxFecM). Disjoint and internally distinct, so
  // every square submatrix of [c_{j,i}] = [1/(x_j ^ y_i)] is invertible.
  PB_CHECK(repair_index >= 0 && repair_index < kMaxFecM);
  PB_CHECK(data_index >= 0 && data_index < kMaxFecK);
  const std::uint8_t x = static_cast<std::uint8_t>(255 - repair_index);
  const std::uint8_t y = static_cast<std::uint8_t>(data_index);
  return gf256_inv(static_cast<std::uint8_t>(x ^ y));
}

std::vector<std::uint8_t> serialize_repair_payload(
    const FecRepairHeader& header, const std::vector<std::uint8_t>& symbol) {
  std::vector<std::uint8_t> payload;
  payload.reserve(kFecRepairHeaderSize + symbol.size());
  payload.push_back(header.scheme);
  payload.push_back(header.k);
  payload.push_back(header.m);
  payload.push_back(header.repair_index);
  put_u16(payload, header.base_sequence);
  put_u16(payload, header.symbol_len);
  payload.insert(payload.end(), symbol.begin(), symbol.end());
  return payload;
}

bool parse_repair_header(const Packet& packet, FecRepairHeader* header) {
  const BufferRef& p = packet.payload;
  if (p.size() < kFecRepairHeaderSize) return false;
  header->scheme = p[0];
  header->k = p[1];
  header->m = p[2];
  header->repair_index = p[3];
  header->base_sequence = static_cast<std::uint16_t>((p[4] << 8) | p[5]);
  header->symbol_len = static_cast<std::uint16_t>((p[6] << 8) | p[7]);
  if (header->scheme != static_cast<std::uint8_t>(FecScheme::kXorParity) &&
      header->scheme != static_cast<std::uint8_t>(FecScheme::kReedSolomon)) {
    return false;
  }
  if (header->k == 0 || header->k > kMaxFecK) return false;
  if (header->m == 0 || header->m > kMaxFecM) return false;
  if (header->repair_index >= header->m) return false;
  if (header->scheme == static_cast<std::uint8_t>(FecScheme::kXorParity) &&
      header->m != 1) {
    return false;
  }
  // The length prefix alone needs two symbol bytes; anything shorter (or a
  // symbol_len that disagrees with the payload, e.g. a truncated repair
  // packet) cannot be trusted for reconstruction.
  if (header->symbol_len < 2) return false;
  if (p.size() != kFecRepairHeaderSize + header->symbol_len) return false;
  return true;
}

FecEncoder::FecEncoder(const FecConfig& config, BufferArena* arena)
    : config_(config),
      arena_(arena != nullptr ? arena : &BufferArena::scratch()) {
  PB_CHECK(config.k >= 1 && config.k <= kMaxFecK);
  PB_CHECK(config.m >= 0 && config.m <= kMaxFecM);
  PB_CHECK(config.scheme == FecScheme::kXorParity ||
           config.scheme == FecScheme::kReedSolomon);
  if (config.scheme == FecScheme::kXorParity) PB_CHECK(config.m <= 1);
}

void FecEncoder::set_m(int m) {
  int clamped = std::clamp(m, 0, kMaxFecM);
  if (config_.scheme == FecScheme::kXorParity) clamped = std::min(clamped, 1);
  config_.m = clamped;
}

int FecEncoder::protect(std::vector<Packet>* packets) {
  if (config_.m <= 0 || packets->empty()) return 0;
  const std::size_t media_count = packets->size();
  std::vector<Packet> repairs;

  for (std::size_t begin = 0; begin < media_count;
       begin += static_cast<std::size_t>(config_.k)) {
    const int count = static_cast<int>(
        std::min<std::size_t>(static_cast<std::size_t>(config_.k),
                              media_count - begin));
    std::size_t max_wire = 0;
    for (int j = 0; j < count; ++j) {
      max_wire = std::max(max_wire, (*packets)[begin + j].wire_size());
    }
    const std::size_t symbol_len = 2 + max_wire;

    // One pieces descriptor per media packet (18-byte stack prefix + a
    // borrowed payload slice); the pre-arena encoder materialized every
    // packet's padded symbol here — two copies of each wire image.
    std::vector<SymbolPieces> pieces;
    pieces.reserve(static_cast<std::size_t>(count));
    for (int j = 0; j < count; ++j) {
      const Packet& p = (*packets)[begin + j];
      pieces.push_back(make_symbol_pieces(p));
      common::ledger_legacy(2 * p.wire_size());
    }

    const Packet& first = (*packets)[begin];
    for (int r = 0; r < config_.m; ++r) {
      // Build the repair payload in place: header bytes, then the symbol
      // accumulated directly into the arena allocation.
      Packet repair;
      repair.payload = arena_->allocate(kFecRepairHeaderSize + symbol_len);
      std::uint8_t* d = repair.payload.mutable_data();
      d[0] = static_cast<std::uint8_t>(config_.scheme);
      d[1] = static_cast<std::uint8_t>(count);
      d[2] = static_cast<std::uint8_t>(config_.m);
      d[3] = static_cast<std::uint8_t>(r);
      d[4] = static_cast<std::uint8_t>(first.header.sequence >> 8);
      d[5] = static_cast<std::uint8_t>(first.header.sequence & 0xFF);
      d[6] = static_cast<std::uint8_t>(symbol_len >> 8);
      d[7] = static_cast<std::uint8_t>(symbol_len & 0xFF);
      std::uint8_t* symbol = d + kFecRepairHeaderSize;
      std::memset(symbol, 0, symbol_len);
      for (int j = 0; j < count; ++j) {
        addmul_pieces(symbol, pieces[static_cast<std::size_t>(j)],
                      coefficient(config_.scheme, r, j));
      }
      common::ledger_legacy(symbol_len);  // old serialize_repair_payload copy

      repair.header.payload_type = kPayloadTypeFec;
      repair.header.sequence = next_repair_sequence_++;
      repair.header.timestamp = first.header.timestamp;
      repair.header.ssrc = first.header.ssrc + config_.ssrc_offset;
      repair.crc_present = first.crc_present;
      stats_.repair_bytes += repair.wire_size();
      repairs.push_back(std::move(repair));
    }
    stats_.windows += 1;
    stats_.media_packets += static_cast<std::uint64_t>(count);
  }

  stats_.repair_packets += repairs.size();
  PB_BUMP("net.fec.windows_encoded", repairs.empty() ? 0 : 1);
  PB_BUMP("net.fec.repair_packets_sent", repairs.size());
  const int appended = static_cast<int>(repairs.size());
  for (Packet& repair : repairs) packets->push_back(std::move(repair));
  return appended;
}

FecDecoder::FecDecoder(BufferArena* arena, bool expect_crc)
    : arena_(arena != nullptr ? arena : &BufferArena::scratch()),
      expect_crc_(expect_crc) {}

std::vector<Packet> FecDecoder::process(std::vector<Packet> packets) {
  std::vector<Packet> media;
  media.reserve(packets.size());

  struct RepairEntry {
    FecRepairHeader header;
    BufferRef symbol;  // borrowed slice of the repair packet's payload
  };
  // Window key: everything a consistent window must agree on. std::map
  // keys keep recovery order deterministic regardless of arrival order.
  using WindowKey =
      std::tuple<std::uint16_t, std::uint8_t, std::uint8_t, std::uint8_t,
                 std::uint16_t>;
  std::map<WindowKey, std::vector<RepairEntry>> windows;

  std::uint64_t invalid = 0;
  for (Packet& packet : packets) {
    if (!packet.is_fec_repair()) {
      media.push_back(std::move(packet));
      continue;
    }
    stats_.repair_packets_seen += 1;
    FecRepairHeader header;
    if (!parse_repair_header(packet, &header)) {
      ++invalid;
      continue;
    }
    const WindowKey key{header.base_sequence, header.k, header.m,
                        header.scheme, header.symbol_len};
    std::vector<RepairEntry>& entries = windows[key];
    // A duplicated repair packet (same window, same index) adds no new
    // equation; keep the first arrival.
    bool duplicate = false;
    for (const RepairEntry& e : entries) {
      if (e.header.repair_index == header.repair_index) {
        duplicate = true;
        break;
      }
    }
    if (duplicate) continue;
    RepairEntry entry;
    entry.header = header;
    entry.symbol = packet.payload.slice(
        kFecRepairHeaderSize, packet.payload.size() - kFecRepairHeaderSize);
    common::ledger_legacy(entry.symbol.size());
    entries.push_back(std::move(entry));
  }
  stats_.repair_packets_invalid += invalid;
  PB_BUMP("net.fec.repair_invalid", invalid);
  if (windows.empty()) return media;

  std::vector<Packet> recovered_packets;
  for (auto& [key, entries] : windows) {
    stats_.windows_seen += 1;
    const FecRepairHeader& w = entries.front().header;
    const FecScheme scheme = static_cast<FecScheme>(w.scheme);
    const int k = w.k;
    const std::size_t symbol_len = w.symbol_len;

    // Which window offsets arrived? First arrival wins for the solve;
    // duplicates stay in the media stream for the depacketizer to judge.
    std::vector<const Packet*> present(static_cast<std::size_t>(k), nullptr);
    for (const Packet& packet : media) {
      const std::uint16_t offset = static_cast<std::uint16_t>(
          packet.header.sequence - w.base_sequence);
      if (offset < k && present[offset] == nullptr) {
        present[offset] = &packet;
      }
    }
    std::vector<int> missing;
    for (int j = 0; j < k; ++j) {
      if (present[static_cast<std::size_t>(j)] == nullptr) missing.push_back(j);
    }
    if (missing.empty()) continue;  // nothing to do; repairs are consumed
    if (missing.size() > entries.size()) {
      stats_.windows_unrecoverable += 1;
      PB_BUMP("net.fec.windows_unrecoverable", 1);
      continue;
    }

    // Deterministic equation choice: lowest repair indices first.
    std::sort(entries.begin(), entries.end(),
              [](const RepairEntry& a, const RepairEntry& b) {
                return a.header.repair_index < b.header.repair_index;
              });
    const std::size_t e = missing.size();

    // RHS_r = repair symbol r minus (XOR) the present packets'
    // contributions; the unknowns are the missing symbols.
    std::vector<std::vector<std::uint8_t>> rhs;
    std::vector<std::vector<std::uint8_t>> matrix;  // e rows of e coefficients
    bool window_ok = true;
    for (std::size_t r = 0; r < e; ++r) {
      const RepairEntry& entry = entries[r];
      if (entry.symbol.size() != symbol_len) {  // parse enforces; defensive
        window_ok = false;
        break;
      }
      std::vector<std::uint8_t> b = entry.symbol.to_vector();
      common::ledger_copied(b.size());
      common::ledger_legacy(b.size());
      for (int j = 0; j < k; ++j) {
        const Packet* p = present[static_cast<std::size_t>(j)];
        if (p == nullptr) continue;
        // A "present" packet longer than the window's symbol can only be
        // the product of header damage; its bytes cannot participate in a
        // symbol_len-sized combination.
        if (p->wire_size() + 2 > symbol_len) {
          window_ok = false;
          break;
        }
        // Stream the packet's symbol through the kernel instead of
        // materializing it (the pre-arena decoder built a padded copy of
        // every present packet for every equation).
        addmul_pieces(b.data(), make_symbol_pieces(*p),
                      coefficient(scheme, entry.header.repair_index, j));
        common::ledger_legacy(2 * p->wire_size());
      }
      if (!window_ok) break;
      rhs.push_back(std::move(b));
      std::vector<std::uint8_t> row(e);
      for (std::size_t t = 0; t < e; ++t) {
        row[t] = coefficient(scheme, entry.header.repair_index, missing[t]);
      }
      matrix.push_back(std::move(row));
    }

    // Gauss–Jordan over GF(256). The Cauchy construction guarantees a
    // nonzero pivot for honest windows; hostile headers (e.g. an XOR
    // window claiming m > 1 survived parse? it cannot — but a forged RS
    // index set could repeat rows) fall out here as a singular system.
    if (window_ok) {
      for (std::size_t col = 0; col < e && window_ok; ++col) {
        std::size_t pivot = col;
        while (pivot < e && matrix[pivot][col] == 0) ++pivot;
        if (pivot == e) {
          window_ok = false;
          break;
        }
        std::swap(matrix[col], matrix[pivot]);
        std::swap(rhs[col], rhs[pivot]);
        const std::uint8_t inv = gf256_inv(matrix[col][col]);
        for (std::size_t t = 0; t < e; ++t) {
          matrix[col][t] = gf256_mul(matrix[col][t], inv);
        }
        gf256_scale(rhs[col].data(), inv, symbol_len);
        for (std::size_t r = 0; r < e; ++r) {
          if (r == col || matrix[r][col] == 0) continue;
          const std::uint8_t c = matrix[r][col];
          for (std::size_t t = 0; t < e; ++t) {
            matrix[r][t] =
                static_cast<std::uint8_t>(matrix[r][t] ^ gf256_mul(c, matrix[col][t]));
          }
          gf256_addmul(rhs[r].data(), rhs[col].data(), c, symbol_len);
        }
      }
    }
    if (!window_ok) {
      stats_.windows_unrecoverable += 1;
      PB_BUMP("net.fec.windows_unrecoverable", 1);
      continue;
    }

    for (std::size_t t = 0; t < e; ++t) {
      const std::vector<std::uint8_t>& symbol = rhs[t];
      const std::size_t len =
          static_cast<std::size_t>((symbol[0] << 8) | symbol[1]);
      Packet recovered;
      bool ok = len >= kHeaderWireSize && len + 2 <= symbol.size();
      if (ok) {
        // The recovered wire image goes into the arena once; the parsed
        // payload is a slice of it (the pre-arena decoder copied the wire
        // out of the symbol and then copied the payload out of the wire).
        const BufferRef wire = arena_->copy(symbol.data() + 2, len);
        common::ledger_legacy(len + (len - kHeaderWireSize));
        ok = parse_packet_ref(wire, &recovered, expect_crc_) &&
             !recovered.is_fec_repair();
      }
      if (!ok) {
        stats_.recovered_unparseable += 1;
        PB_BUMP("net.fec.recovered_unparseable", 1);
        continue;
      }
      if (expect_crc_ && !(recovered.crc_present && recovered.crc_ok)) {
        // The solve produced bytes whose own trailer disagrees (or whose
        // X bit vanished) — symbol damage FEC could not see. Never hand
        // garbage downstream; recovered packets bypass the verify stage.
        stats_.recovered_crc_failed += 1;
        PB_BUMP("net.fec.recovered_crc_failed", 1);
        continue;
      }
      recovered.recovered = true;
      stats_.packets_recovered += 1;
      PB_BUMP("net.fec.packets_recovered", 1);
      recovered_packets.push_back(std::move(recovered));
    }
  }

  // Splice each reconstruction in by sequence (RFC 1982 serial order), so
  // the depacketizer sees the stream a loss-free channel would have
  // delivered — modulo whatever reordering the network itself introduced.
  for (Packet& rec : recovered_packets) {
    auto it = media.begin();
    while (it != media.end() &&
           static_cast<std::int16_t>(it->header.sequence -
                                     rec.header.sequence) <= 0) {
      ++it;
    }
    media.insert(it, std::move(rec));
  }
  return media;
}

}  // namespace pbpair::net
