#include "net/rtcp.h"

#include "common/check.h"
#include "obs/metrics.h"

namespace pbpair::net {
namespace {

constexpr std::uint8_t kRtcpVersion = 2;
constexpr std::uint8_t kPacketTypeRr = 201;  // RFC 3550
constexpr std::size_t kRrWireSize = 8 + 24;  // header + one report block
// Profile-specific extension carrying the corruption split (RFC 3550
// §6.4.1 allows trailing extensions covered by the length field).
constexpr std::size_t kCorruptionExtSize = 8;

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v & 0xFF));
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v >> 24));
  out.push_back(static_cast<std::uint8_t>((v >> 16) & 0xFF));
  out.push_back(static_cast<std::uint8_t>((v >> 8) & 0xFF));
  out.push_back(static_cast<std::uint8_t>(v & 0xFF));
}

std::uint32_t get_u32(const std::uint8_t* p) {
  return (static_cast<std::uint32_t>(p[0]) << 24) |
         (static_cast<std::uint32_t>(p[1]) << 16) |
         (static_cast<std::uint32_t>(p[2]) << 8) | p[3];
}

}  // namespace

std::vector<std::uint8_t> serialize_receiver_report(const ReceiverReport& rr) {
  const bool corruption_split =
      rr.fraction_corrupted != 0 || rr.cumulative_corrupted != 0;
  const std::size_t wire_size =
      kRrWireSize + (corruption_split ? kCorruptionExtSize : 0);
  std::vector<std::uint8_t> wire;
  wire.reserve(wire_size);
  // Header: V=2, P=0, RC=1 | PT=201 | length (in 32-bit words minus one).
  wire.push_back((kRtcpVersion << 6) | 1);
  wire.push_back(kPacketTypeRr);
  put_u16(wire, static_cast<std::uint16_t>(wire_size / 4 - 1));
  put_u32(wire, rr.reporter_ssrc);
  // Report block.
  put_u32(wire, rr.reportee_ssrc);
  wire.push_back(rr.fraction_lost);
  wire.push_back(static_cast<std::uint8_t>((rr.cumulative_lost >> 16) & 0xFF));
  wire.push_back(static_cast<std::uint8_t>((rr.cumulative_lost >> 8) & 0xFF));
  wire.push_back(static_cast<std::uint8_t>(rr.cumulative_lost & 0xFF));
  put_u32(wire, rr.highest_sequence);  // extended highest sequence
  put_u32(wire, 0);                    // interarrival jitter (not modeled)
  put_u32(wire, 0);                    // last SR
  put_u32(wire, 0);                    // delay since last SR
  if (corruption_split) {
    wire.push_back(rr.fraction_corrupted);
    wire.push_back(
        static_cast<std::uint8_t>((rr.cumulative_corrupted >> 16) & 0xFF));
    wire.push_back(
        static_cast<std::uint8_t>((rr.cumulative_corrupted >> 8) & 0xFF));
    wire.push_back(static_cast<std::uint8_t>(rr.cumulative_corrupted & 0xFF));
    put_u32(wire, 0);  // reserved
  }
  return wire;
}

bool parse_receiver_report(const std::vector<std::uint8_t>& wire,
                           ReceiverReport* rr) {
  if (wire.size() < kRrWireSize) return false;
  if ((wire[0] >> 6) != kRtcpVersion) return false;
  if ((wire[0] & 0x1F) != 1) return false;  // exactly one report block
  if (wire[1] != kPacketTypeRr) return false;
  rr->reporter_ssrc = get_u32(&wire[4]);
  rr->reportee_ssrc = get_u32(&wire[8]);
  rr->fraction_lost = wire[12];
  rr->cumulative_lost = (static_cast<std::uint32_t>(wire[13]) << 16) |
                        (static_cast<std::uint32_t>(wire[14]) << 8) |
                        wire[15];
  rr->highest_sequence = static_cast<std::uint16_t>(get_u32(&wire[16]) & 0xFFFF);
  // Corruption-split extension: present when the length field covers it.
  // Reports without it (and inputs with trailing junk the length field
  // does not claim) parse exactly as before the split existed.
  rr->fraction_corrupted = 0;
  rr->cumulative_corrupted = 0;
  const std::size_t words =
      static_cast<std::size_t>((wire[2] << 8) | wire[3]) + 1;
  if (words * 4 >= kRrWireSize + kCorruptionExtSize &&
      wire.size() >= kRrWireSize + kCorruptionExtSize) {
    rr->fraction_corrupted = wire[32];
    rr->cumulative_corrupted = (static_cast<std::uint32_t>(wire[33]) << 16) |
                               (static_cast<std::uint32_t>(wire[34]) << 8) |
                               wire[35];
  }
  return true;
}

ReceiverReport ReceiverReportBuilder::build(
    const PlrEstimator& estimator, std::uint16_t highest_sequence,
    std::uint64_t corrupted_interval, std::uint64_t cumulative_corrupted) {
  ReceiverReport rr;
  rr.reporter_ssrc = reporter_ssrc_;
  rr.reportee_ssrc = reportee_ssrc_;
  rr.cumulative_lost = static_cast<std::uint32_t>(estimator.lost() & 0xFFFFFF);
  rr.highest_sequence = highest_sequence;
  rr.cumulative_corrupted =
      static_cast<std::uint32_t>(cumulative_corrupted & 0xFFFFFF);

  std::uint64_t lost_delta = estimator.lost() - last_lost_;
  std::uint64_t recv_delta = estimator.received() - last_received_;
  std::uint64_t expected_delta = lost_delta + recv_delta;
  if (expected_delta > 0) {
    rr.fraction_lost = static_cast<std::uint8_t>(
        (lost_delta * 256) / expected_delta > 255
            ? 255
            : (lost_delta * 256) / expected_delta);
    rr.fraction_corrupted = static_cast<std::uint8_t>(
        (corrupted_interval * 256) / expected_delta > 255
            ? 255
            : (corrupted_interval * 256) / expected_delta);
  }
  last_lost_ = estimator.lost();
  last_received_ = estimator.received();
  if (obs::enabled()) {
    static obs::Counter* c_reports = &obs::counter("net.feedback.reports");
    c_reports->add(1);
    // The sender-visible PLR estimate (gauges are last-writer-wins and
    // stripped from deterministic metric output).
    static obs::Gauge* g_plr = &obs::gauge("net.feedback.plr");
    g_plr->set(estimator.estimate());
  }
  return rr;
}

}  // namespace pbpair::net
