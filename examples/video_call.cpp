// Simulated mobile video call with network feedback (the paper's target
// scenario, §1 + §3.2).
//
// A sender encodes a foreman-like clip with PBPAIR and streams it over a
// bursty Gilbert-Elliott channel whose quality degrades mid-call. The
// receiver measures packet loss from RTP sequence numbers (RTCP-style
// feedback, net::PlrEstimator); the sender feeds the estimate into both
// the PBPAIR probability model (set_plr) and the hold-intra-rate
// controller (set_intra_th), keeping the bit rate steady while the
// robustness follows the channel.
//
//   ./examples/video_call [frames]
#include <cstdio>
#include <cstdlib>

#include "codec/decoder.h"
#include "codec/encoder.h"
#include "core/adaptation.h"
#include "core/pbpair_policy.h"
#include "net/channel.h"
#include "net/feedback.h"
#include "net/loss_model.h"
#include "net/packetizer.h"
#include "net/rtcp.h"
#include "video/metrics.h"
#include "video/sequence.h"

using namespace pbpair;

int main(int argc, char** argv) {
  const int frames = argc > 1 ? std::atoi(argv[1]) : 150;

  video::SyntheticSequence clip =
      video::make_paper_sequence(video::SequenceKind::kForemanLike);

  // Sender side.
  core::PbpairConfig pbpair_config;
  pbpair_config.intra_th = 0.92;
  pbpair_config.plr = 0.05;
  core::PbpairPolicy policy(11, 9, pbpair_config);
  codec::EncoderConfig encoder_config;
  encoder_config.qp = 10;
  codec::Encoder encoder(encoder_config, &policy);
  net::Packetizer packetizer(net::PacketizerConfig{});

  core::AdaptationConfig adapt_config;
  adapt_config.goal = core::AdaptationGoal::kHoldIntraRate;
  adapt_config.base_intra_th = 0.92;
  adapt_config.base_plr = 0.05;
  adapt_config.plr_coupling = 0.5;
  core::PowerAwareController controller(adapt_config);

  // Network: good for the first half of the call, then the user walks away
  // from the access point (bursty loss).
  net::GilbertElliottLoss::Params good;
  good.p_good_to_bad = 0.01;
  good.p_bad_to_good = 0.6;
  good.loss_in_good = 0.002;
  good.loss_in_bad = 0.3;
  net::GilbertElliottLoss::Params bad = good;
  bad.p_good_to_bad = 0.10;
  bad.loss_in_bad = 0.6;
  net::GilbertElliottLoss good_loss(good, 1);
  net::GilbertElliottLoss bad_loss(bad, 2);
  net::Channel good_channel(&good_loss);
  net::Channel bad_channel(&bad_loss);

  // Receiver side.
  codec::Decoder decoder(codec::DecoderConfig{});
  net::PlrEstimator estimator(/*window=*/64);
  net::ReceiverReportBuilder report_builder(/*reporter=*/0x1337,
                                            /*reportee=*/0x50425041);

  std::printf("frame  plr_est  intra_th  intra_mbs  bytes  psnr_db\n");
  double psnr_sum = 0.0;
  std::uint64_t bytes_total = 0;
  double sender_plr = 0.0;  // what RTCP has told the sender so far
  std::uint16_t highest_seq = 0;
  for (int i = 0; i < frames; ++i) {
    // Feedback path: every 10 frames the receiver serializes an RTCP RR;
    // the sender parses it and updates its loss estimate.
    if (i > 0 && i % 10 == 0) {
      std::vector<std::uint8_t> wire = net::serialize_receiver_report(
          report_builder.build(estimator, highest_seq));
      net::ReceiverReport rr;
      if (net::parse_receiver_report(wire, &rr)) {
        sender_plr = rr.fraction_lost_as_double();
      }
    }
    double plr_estimate = sender_plr;
    controller.on_plr_update(plr_estimate);
    policy.set_plr(plr_estimate);
    policy.set_intra_th(controller.intra_th());

    video::YuvFrame original = clip.frame_at(i);
    codec::EncodedFrame encoded = encoder.encode_frame(original);
    std::vector<net::Packet> packets = packetizer.packetize(encoded);

    net::Channel& channel = i < frames / 2 ? good_channel : bad_channel;
    std::vector<net::Packet> delivered = channel.transmit(packets);
    for (const net::Packet& p : delivered) {
      estimator.on_packet_received(p.header.sequence);
      highest_seq = p.header.sequence;
    }

    codec::ReceivedFrame received = net::depacketize(delivered, i);
    const video::YuvFrame& output = decoder.decode_frame(received);
    double psnr = video::psnr_luma(original, output);
    psnr_sum += psnr;
    bytes_total += encoded.size_bytes();

    if (i % 10 == 0 || i == frames - 1) {
      std::printf("%5d  %6.3f  %8.3f  %9d  %5zu  %7.2f\n", i, plr_estimate,
                  controller.intra_th(), encoded.intra_mb_count(),
                  encoded.size_bytes(), psnr);
    }
  }

  std::printf(
      "\ncall summary: %d frames, %.1f KB sent, avg PSNR %.2f dB, "
      "receiver-estimated PLR %.3f (lifetime %.3f)\n",
      frames, bytes_total / 1024.0, psnr_sum / frames, estimator.estimate(),
      static_cast<double>(estimator.lost()) /
          std::max<std::uint64_t>(1, estimator.lost() + estimator.received()));
  std::printf(
      "watch the intra_th column drop when the channel turns bad: the\n"
      "controller trades threshold for the rising PLR to hold the bit rate.\n");
  return 0;
}
