// Run the full PBPAIR pipeline over a real raw 4:2:0 clip — e.g. the
// actual FOREMAN.QCIF if you have it — and write the decoder's (lossy,
// concealed) output next to it for visual inspection.
//
//   ./examples/transcode_yuv <in.yuv> <width> <height> <out.yuv> [plr] [intra_th]
//
// Input is the common raw planar YUV 4:2:0 format (concatenated Y,U,V per
// frame); width/height must be multiples of 16 (QCIF: 176 144).
#include <cstdio>
#include <cstdlib>

#include "codec/decoder.h"
#include "codec/encoder.h"
#include "core/pbpair_policy.h"
#include "net/channel.h"
#include "net/loss_model.h"
#include "net/packetizer.h"
#include "video/metrics.h"
#include "video/yuv_io.h"

using namespace pbpair;

int main(int argc, char** argv) {
  if (argc < 5) {
    std::fprintf(stderr,
                 "usage: %s <in.yuv> <width> <height> <out.yuv> [plr] "
                 "[intra_th]\n",
                 argv[0]);
    return 2;
  }
  const char* in_path = argv[1];
  const int width = std::atoi(argv[2]);
  const int height = std::atoi(argv[3]);
  const char* out_path = argv[4];
  const double plr = argc > 5 ? std::atof(argv[5]) : 0.10;
  const double intra_th = argc > 6 ? std::atof(argv[6]) : 0.90;

  if (width <= 0 || height <= 0 || width % 16 != 0 || height % 16 != 0) {
    std::fprintf(stderr, "width/height must be positive multiples of 16\n");
    return 2;
  }

  std::vector<video::YuvFrame> frames =
      video::read_yuv_file(in_path, width, height);
  if (frames.empty()) {
    std::fprintf(stderr, "could not read any %dx%d frames from %s\n", width,
                 height, in_path);
    return 1;
  }
  std::printf("read %zu frames of %dx%d from %s\n", frames.size(), width,
              height, in_path);

  core::PbpairConfig pbpair_config;
  pbpair_config.intra_th = intra_th;
  pbpair_config.plr = plr;
  core::PbpairPolicy policy(width / 16, height / 16, pbpair_config);
  codec::EncoderConfig encoder_config;
  encoder_config.width = width;
  encoder_config.height = height;
  codec::Encoder encoder(encoder_config, &policy);
  codec::Decoder decoder(codec::DecoderConfig{width, height});
  net::Packetizer packetizer(net::PacketizerConfig{});
  net::UniformFrameLoss loss(plr, 2005);
  net::Channel channel(&loss);

  std::vector<video::YuvFrame> decoded;
  decoded.reserve(frames.size());
  double psnr_sum = 0.0;
  std::uint64_t bytes = 0;
  for (std::size_t i = 0; i < frames.size(); ++i) {
    codec::EncodedFrame encoded = encoder.encode_frame(frames[i]);
    bytes += encoded.size_bytes();
    auto delivered = channel.transmit(packetizer.packetize(encoded));
    codec::ReceivedFrame received =
        net::depacketize(delivered, static_cast<int>(i));
    decoded.push_back(decoder.decode_frame(received));
    psnr_sum += video::psnr_luma(frames[i], decoded.back());
  }

  if (!video::write_yuv_file(out_path, decoded)) {
    std::fprintf(stderr, "failed to write %s\n", out_path);
    return 1;
  }
  std::printf(
      "wrote %zu decoded frames to %s\n"
      "bitstream %.1f KB, avg luma PSNR %.2f dB, frames lost %llu/%zu\n",
      decoded.size(), out_path, bytes / 1024.0, psnr_sum / frames.size(),
      static_cast<unsigned long long>(channel.stats().packets_dropped),
      frames.size());
  return 0;
}
