// Side-by-side comparison of all five error-resilience schemes on a chosen
// clip and loss rate — a configurable miniature of the paper's Figure 5.
//
//   ./examples/compare_schemes [akiyo|foreman|garden] [plr] [frames]
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "net/loss_model.h"
#include "sim/pipeline.h"
#include "sim/report.h"

using namespace pbpair;

int main(int argc, char** argv) {
  video::SequenceKind kind = video::SequenceKind::kForemanLike;
  if (argc > 1) {
    if (std::strcmp(argv[1], "akiyo") == 0) {
      kind = video::SequenceKind::kAkiyoLike;
    } else if (std::strcmp(argv[1], "garden") == 0) {
      kind = video::SequenceKind::kGardenLike;
    }
  }
  const double plr = argc > 2 ? std::atof(argv[2]) : 0.10;
  const int frames = argc > 3 ? std::atoi(argv[3]) : 120;

  video::SyntheticSequence sequence = video::make_paper_sequence(kind);
  sim::PipelineConfig config;
  config.frames = frames;
  config.encoder.search.strategy = codec::SearchStrategy::kFullSearch;
  config.encoder.search.range = 7;

  core::PbpairConfig pbpair;
  pbpair.plr = plr;
  // Size-match PBPAIR to PGOP-3 like the paper (§4.2).
  sim::PipelineResult pgop_clean =
      sim::run_pipeline(sequence, sim::SchemeSpec::pgop(3), nullptr, config);
  pbpair.intra_th = sim::calibrate_intra_th(sequence, pbpair,
                                            pgop_clean.total_bytes, config);

  std::printf("clip %s, PLR %.0f%%, %d frames, Intra_Th %.3f\n\n",
              video::sequence_kind_name(kind), plr * 100.0, frames,
              pbpair.intra_th);

  sim::Table table({"scheme", "PSNR_dB", "bad_px_M", "size_KB", "encode_J",
                    "tx_J", "intra_MBs", "ME_runs"});
  for (const sim::SchemeSpec& scheme :
       {sim::SchemeSpec::no_resilience(), sim::SchemeSpec::pbpair(pbpair),
        sim::SchemeSpec::pgop(3), sim::SchemeSpec::gop(3),
        sim::SchemeSpec::air(24)}) {
    net::UniformFrameLoss loss(plr, 2005);
    sim::PipelineResult r = sim::run_pipeline(sequence, scheme, &loss, config);
    table.add_row(
        {scheme.label(), sim::format("%.2f", r.avg_psnr_db),
         sim::format("%.3f", static_cast<double>(r.total_bad_pixels) / 1e6),
         sim::format("%.1f", static_cast<double>(r.total_bytes) / 1024.0),
         sim::format("%.3f", r.encode_energy.total_j()),
         sim::format("%.3f", r.tx_energy_j),
         sim::format("%llu", static_cast<unsigned long long>(r.total_intra_mbs)),
         sim::format("%llu", static_cast<unsigned long long>(
                                 r.encoder_ops.me_invocations))});
  }
  table.print();
  return 0;
}
