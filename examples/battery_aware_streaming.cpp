// Battery-constrained streaming (paper §3.2: "maximize error resilient
// level within current residual energy constraint").
//
// A PDA streams a garden-like clip (worst-case motion = worst-case ME
// energy) with a battery budget that cannot sustain the user's base
// operating point. Each frame, the true metered encode+transmit energy
// drains a Battery; the kMaxResilienceInBudget controller watches the
// projection and raises Intra_Th — intra MBs skip motion estimation, so
// frames get *cheaper and more robust* at the cost of bit rate.
//
//   ./examples/battery_aware_streaming [frames] [budget_fraction]
#include <cstdio>
#include <cstdlib>

#include "codec/encoder.h"
#include "core/adaptation.h"
#include "core/pbpair_policy.h"
#include "energy/battery.h"
#include "energy/energy_model.h"
#include "video/sequence.h"

using namespace pbpair;

namespace {

double spent_j(const codec::Encoder& encoder,
               const energy::DeviceProfile& profile) {
  energy::EnergyBreakdown e = encode_energy(encoder.ops(), profile);
  return e.total_j() +
         energy::tx_energy_j(encoder.ops().bits_written / 8, profile);
}

}  // namespace

int main(int argc, char** argv) {
  const int frames = argc > 1 ? std::atoi(argv[1]) : 200;
  const double budget_fraction = argc > 2 ? std::atof(argv[2]) : 0.80;

  video::SyntheticSequence clip =
      video::make_paper_sequence(video::SequenceKind::kGardenLike);
  const energy::DeviceProfile& profile = energy::zaurus_sl5600();

  codec::EncoderConfig encoder_config;
  encoder_config.qp = 10;
  encoder_config.search.strategy = codec::SearchStrategy::kFullSearch;
  encoder_config.search.range = 7;

  // Pass 1: how much would the user's preferred operating point cost?
  core::PbpairConfig base;
  base.intra_th = 0.80;
  base.plr = 0.10;
  double unconstrained;
  {
    core::PbpairPolicy policy(11, 9, base);
    codec::Encoder encoder(encoder_config, &policy);
    for (int i = 0; i < frames; ++i) encoder.encode_frame(clip.frame_at(i));
    unconstrained = spent_j(encoder, profile);
  }
  const double budget = unconstrained * budget_fraction;
  std::printf(
      "device %s, %d garden-like frames\n"
      "unconstrained session at Intra_Th %.2f would cost %.3f J; "
      "battery only has %.3f J (%.0f%%)\n\n",
      profile.name.c_str(), frames, base.intra_th, unconstrained, budget,
      budget_fraction * 100.0);

  // Pass 2: the adaptive session.
  core::PbpairPolicy policy(11, 9, base);
  codec::Encoder encoder(encoder_config, &policy);
  energy::Battery battery(budget);

  core::AdaptationConfig adapt_config;
  adapt_config.goal = core::AdaptationGoal::kMaxResilienceInBudget;
  adapt_config.base_intra_th = base.intra_th;
  adapt_config.energy_budget_j = budget;
  adapt_config.planned_frames = frames;
  adapt_config.step = 0.02;
  core::PowerAwareController controller(adapt_config);

  std::printf("frame  battery_J  battery_%%  intra_th  intra_mbs  bytes\n");
  double drained_so_far = 0.0;
  for (int i = 0; i < frames; ++i) {
    if (i > 0) {
      controller.on_energy_update(drained_so_far, i);
      policy.set_intra_th(controller.intra_th());
    }
    codec::EncodedFrame frame = encoder.encode_frame(clip.frame_at(i));
    double total_spent = spent_j(encoder, profile);
    battery.drain(total_spent - drained_so_far);
    drained_so_far = total_spent;

    if (i % 20 == 0 || i == frames - 1) {
      std::printf("%5d  %9.3f  %8.1f%%  %8.3f  %9d  %5zu\n", i,
                  battery.remaining_j(), battery.fraction_remaining() * 100.0,
                  controller.intra_th(), frame.intra_mb_count(),
                  frame.size_bytes());
    }
    if (battery.depleted()) {
      std::printf("battery depleted at frame %d!\n", i);
      break;
    }
  }

  std::printf(
      "\nsession end: spent %.3f J of %.3f J budget -> %s\n"
      "the controller pushed Intra_Th up to %.3f: cheaper (ME-skipping),\n"
      "more robust frames bought the session its full length.\n",
      drained_so_far, budget,
      battery.depleted() ? "DEPLETED (budget too tight)" : "survived",
      controller.intra_th());
  return 0;
}
