// Visualize WHERE each refresh scheme spends its intra macroblocks, and
// PBPAIR's probability-of-correctness field — the content-awareness
// argument of the paper, made visible in ASCII.
//
//   ./examples/refresh_map [frames] [plr]
//
// Per scheme it prints an 11x9 map of per-MB intra counts over the run
// ('.' = never refreshed, '9'/'#' = hot spot), plus PBPAIR's final σ
// matrix. Expected picture: PGOP's counts are uniform columns, AIR and
// PBPAIR concentrate on the moving head/face region of the foreman-like
// clip — but PBPAIR does it while *skipping* ME for those MBs.
#include <cstdio>
#include <cstdlib>

#include "codec/encoder.h"
#include "core/pbpair_policy.h"
#include "resilience/air_policy.h"
#include "resilience/pgop_policy.h"
#include "sim/scheme.h"
#include "video/sequence.h"

using namespace pbpair;

namespace {

char density_char(int count, int max_count) {
  if (count == 0) return '.';
  static const char kRamp[] = "123456789#";
  int bucket = max_count <= 1 ? 9 : (count * 9) / max_count;
  return kRamp[bucket < 0 ? 0 : (bucket > 9 ? 9 : bucket)];
}

void run_scheme(const sim::SchemeSpec& spec,
                const video::SyntheticSequence& seq, int frames) {
  auto policy = sim::make_policy(spec, 11, 9);
  codec::Encoder encoder(codec::EncoderConfig{}, policy.get());
  std::vector<int> intra_counts(99, 0);
  std::uint64_t me_runs = 0;
  for (int i = 0; i < frames; ++i) {
    codec::EncodedFrame frame = encoder.encode_frame(seq.frame_at(i));
    if (frame.type != codec::FrameType::kInter) continue;  // skip I-frames
    for (int m = 0; m < 99; ++m) {
      if (frame.mb_records[m].mode == codec::MbMode::kIntra) {
        ++intra_counts[m];
      }
    }
  }
  me_runs = encoder.ops().me_invocations;

  int max_count = 1;
  for (int c : intra_counts) max_count = std::max(max_count, c);
  std::printf("%s  (P-frame intra map, max %d refreshes/MB, %llu ME runs)\n",
              spec.label().c_str(), max_count,
              static_cast<unsigned long long>(me_runs));
  for (int my = 0; my < 9; ++my) {
    std::printf("  ");
    for (int mx = 0; mx < 11; ++mx) {
      std::putchar(density_char(intra_counts[my * 11 + mx], max_count));
    }
    std::putchar('\n');
  }

  if (auto* pbpair = dynamic_cast<core::PbpairPolicy*>(policy.get())) {
    std::printf("  final probability-of-correctness matrix (0-9 = sigma*10):\n");
    for (int my = 0; my < 9; ++my) {
      std::printf("  ");
      for (int mx = 0; mx < 11; ++mx) {
        int tenth = static_cast<int>(
            common::q16_to_double(pbpair->matrix().at(mx, my)) * 10.0);
        std::putchar(static_cast<char>('0' + (tenth > 9 ? 9 : tenth)));
      }
      std::putchar('\n');
    }
  }
  std::putchar('\n');
}

}  // namespace

int main(int argc, char** argv) {
  const int frames = argc > 1 ? std::atoi(argv[1]) : 60;
  const double plr = argc > 2 ? std::atof(argv[2]) : 0.10;

  video::SyntheticSequence seq =
      video::make_paper_sequence(video::SequenceKind::kForemanLike);
  std::printf(
      "Where does each scheme spend its refresh? (foreman-like, %d frames)\n"
      "The clip's motion lives in the face/helmet region (center)."
      " PGOP sweeps\ncolumns blindly; AIR and PBPAIR chase the motion —"
      " and PBPAIR's hot MBs\nare exactly the ones whose ME it skips.\n\n",
      frames);

  core::PbpairConfig pbpair;
  pbpair.intra_th = 0.93;
  pbpair.plr = plr;
  run_scheme(sim::SchemeSpec::pbpair(pbpair), seq, frames);
  run_scheme(sim::SchemeSpec::pgop(3), seq, frames);
  run_scheme(sim::SchemeSpec::air(24), seq, frames);
  return 0;
}
