// Quickstart: encode a synthetic QCIF clip with PBPAIR over a 10% lossy
// channel, and print quality, size, and energy — the library's whole API
// surface in ~40 lines.
//
//   ./examples/quickstart [frames] [plr] [intra_th]
#include <cstdio>
#include <cstdlib>

#include "net/loss_model.h"
#include "sim/pipeline.h"

using namespace pbpair;

int main(int argc, char** argv) {
  const int frames = argc > 1 ? std::atoi(argv[1]) : 120;
  const double plr = argc > 2 ? std::atof(argv[2]) : 0.10;
  const double intra_th = argc > 3 ? std::atof(argv[3]) : 0.85;

  // 1. A video source: procedural stand-in for the FOREMAN QCIF clip.
  video::SyntheticSequence sequence =
      video::make_paper_sequence(video::SequenceKind::kForemanLike);

  // 2. The PBPAIR scheme: probability model driven by the expected packet
  //    loss rate and the user's resiliency expectation Intra_Th.
  core::PbpairConfig pbpair_config;
  pbpair_config.intra_th = intra_th;
  pbpair_config.plr = plr;

  // 3. A lossy channel (the paper's uniform frame-discard model).
  net::UniformFrameLoss loss(plr, /*seed=*/42);

  // 4. Run the full pipeline: encode -> packetize -> channel -> decode ->
  //    conceal -> measure.
  sim::PipelineConfig config;
  config.frames = frames;
  sim::PipelineResult result = sim::run_pipeline(
      sequence, sim::SchemeSpec::pbpair(pbpair_config), &loss, config);

  std::printf("PBPAIR quickstart: %d QCIF frames, PLR %.0f%%, Intra_Th %.2f\n",
              frames, plr * 100.0, intra_th);
  std::printf("  encoded size     : %8.1f KB\n", result.total_bytes / 1024.0);
  std::printf("  average PSNR     : %8.2f dB\n", result.avg_psnr_db);
  std::printf("  bad pixels       : %8.2f M\n",
              result.total_bad_pixels / 1e6);
  std::printf("  intra MBs        : %8llu (of %llu)\n",
              static_cast<unsigned long long>(result.total_intra_mbs),
              static_cast<unsigned long long>(
                  result.encoder_ops.total_mbs()));
  std::printf("  ME skipped for   : %8llu MBs (PBPAIR early intra)\n",
              static_cast<unsigned long long>([&] {
                std::uint64_t n = 0;
                for (const auto& f : result.frames) n += f.pre_me_intra_mbs;
                return n;
              }()));
  std::printf("  encode energy    : %8.2f J (iPAQ model; ME %.2f J)\n",
              result.encode_energy.total_j(), result.encode_energy.me_j);
  std::printf("  transmit energy  : %8.2f J\n", result.tx_energy_j);
  std::printf("  frames lost      : %8llu of %d\n",
              static_cast<unsigned long long>(result.channel.packets_dropped),
              frames);
  return 0;
}
